"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the paper's evaluation would show; this
keeps that output aligned and readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..exceptions import ConfigurationError

__all__ = ["format_table", "format_value"]


def format_value(value: Any, float_digits: int = 3) -> str:
    """Human formatting: floats trimmed, ``None`` as ``-``, rest via str."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0):
            return f"{value:.{float_digits}e}"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render dict-rows as an aligned ASCII table.

    Args:
        rows: One mapping per row; missing keys render as ``-``.
        columns: Column order; defaults to first-seen key order.
        title: Optional heading line.
        float_digits: Significant digits for float cells.
    """
    if not rows:
        raise ConfigurationError("cannot render an empty table")
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen

    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append(
            [format_value(row.get(c), float_digits) for c in columns]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(columns))]

    def render_row(row: List[str]) -> str:
        return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(r) for r in cells[1:])
    return "\n".join(lines)
