"""Parameter-sweep harness.

Experiments vary one or two parameters over a grid, run several seeded
trials at each point, and tabulate completion statistics. This module
provides the generic loop so every benchmark reads the same way:

    points = [{"delta_est": d} for d in (2, 8, 32, 128)]
    rows = run_sweep(points, trial_fn, trials=20, base_seed=7)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..sim.results import DiscoveryResult
from ..sim.rng import derive_trial_seed
from .stats import SampleSummary, summarize

__all__ = ["SweepRow", "TrialFn", "run_sweep", "grid_points"]

TrialFn = Callable[[Mapping[str, object], np.random.SeedSequence], DiscoveryResult]


@dataclass
class SweepRow:
    """Aggregated outcome of all trials at one sweep point.

    Attributes:
        point: The swept parameter values.
        results: The per-trial results.
        completion: Summary of completion times across *completed*
            trials (``None`` if none completed).
        completed_fraction: Fraction of trials that fully completed.
    """

    point: Dict[str, object]
    results: List[DiscoveryResult]
    completion: Optional[SampleSummary]
    completed_fraction: float

    def as_row(self, after_all_started: bool = False) -> Dict[str, object]:
        """Row form for table rendering."""
        row: Dict[str, object] = dict(self.point)
        row["trials"] = len(self.results)
        row["completed"] = round(self.completed_fraction, 3)
        summary = self._summary(after_all_started)
        if summary is not None:
            row["mean_time"] = round(summary.mean, 2)
            row["p90_time"] = round(summary.p90, 2)
            row["max_time"] = summary.maximum
        return row

    def _summary(self, after_all_started: bool) -> Optional[SampleSummary]:
        if not after_all_started:
            return self.completion
        times = [
            float(r.completion_after_all_started)
            for r in self.results
            if r.completion_after_all_started is not None
        ]
        return summarize(times) if times else None

    def mean_completion(self, after_all_started: bool = False) -> Optional[float]:
        """Mean completion time, or ``None`` when nothing completed."""
        summary = self._summary(after_all_started)
        return None if summary is None else summary.mean


def run_sweep(
    points: Sequence[Mapping[str, object]],
    trial_fn: TrialFn,
    trials: int,
    base_seed: Optional[int],
) -> List[SweepRow]:
    """Run ``trials`` seeded trials of ``trial_fn`` at every point.

    Per-trial seeds are derived from ``(base_seed, point index, trial
    index)`` so adding points or trials never perturbs existing ones.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not points:
        raise ConfigurationError("sweep needs at least one point")
    rows: List[SweepRow] = []
    for p_idx, point in enumerate(points):
        results = []
        for t_idx in range(trials):
            seed = np.random.SeedSequence(
                entropy=base_seed, spawn_key=(p_idx, t_idx)
            )
            results.append(trial_fn(point, seed))
        times = [
            float(r.completion_time)
            for r in results
            if r.completion_time is not None
        ]
        rows.append(
            SweepRow(
                point=dict(point),
                results=results,
                completion=summarize(times) if times else None,
                completed_fraction=sum(r.completed for r in results) / trials,
            )
        )
    return rows


def grid_points(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Cartesian product of named axes as sweep points.

    ``grid_points(a=(1, 2), b=("x",))`` →
    ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]``.
    """
    if not axes:
        raise ConfigurationError("grid_points needs at least one axis")
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]
