"""Scaling-law fits for sweep results.

The theorems predict power-law shapes — time linear in ``max(S, Δ)``,
inverse in ``ρ``, logarithmic in ``N`` — and the scaling experiments
check them by fitting measured sweeps. :func:`fit_power_law` estimates
the exponent of ``y ≈ a·x^b`` by least squares in log-log space and
reports the fit quality, replacing eyeballed ratios with a number the
benches can assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = ["PowerLawFit", "fit_power_law", "fit_log_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = a · x^exponent``.

    Attributes:
        exponent: The fitted power ``b``.
        prefactor: The fitted ``a``.
        r_squared: Coefficient of determination in log-log space.
    """

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        """``a · x^b`` at ``x``."""
        return self.prefactor * x ** self.exponent


def _check_inputs(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    if len(xs) < 3:
        raise ConfigurationError("need at least 3 points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ConfigurationError("power-law fits need positive data")
    if len(set(xs)) < 2:
        raise ConfigurationError("xs must not be constant")


def _least_squares(us: Sequence[float], vs: Sequence[float]) -> Tuple[float, float, float]:
    n = len(us)
    mu = sum(us) / n
    mv = sum(vs) / n
    sxx = sum((u - mu) ** 2 for u in us)
    sxy = sum((u - mu) * (v - mv) for u, v in zip(us, vs))
    slope = sxy / sxx
    intercept = mv - slope * mu
    ss_res = sum(
        (v - (intercept + slope * u)) ** 2 for u, v in zip(us, vs)
    )
    ss_tot = sum((v - mv) ** 2 for v in vs)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r2


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a·x^b`` by linear regression of ``log y`` on ``log x``."""
    _check_inputs(xs, ys)
    us = [math.log(x) for x in xs]
    vs = [math.log(y) for y in ys]
    slope, intercept, r2 = _least_squares(us, vs)
    return PowerLawFit(
        exponent=slope, prefactor=math.exp(intercept), r_squared=r2
    )


def fit_log_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Fit ``y = a + b·log x``; returns ``(b, a, r²)``.

    The shape the theorems predict for the ``N`` dependence.
    """
    _check_inputs(xs, ys)
    us = [math.log(x) for x in xs]
    slope, intercept, r2 = _least_squares(us, list(ys))
    return slope, intercept, r2
