"""Frame alignment and overlap analysis (Lemmas 4, 7 and 8).

The asynchronous algorithm's correctness rests on three structural
facts about frames under bounded clock drift. This module checks each of
them on *concrete executions* — either traces recorded by the
asynchronous engine or frame sequences synthesized directly from clock
models:

* **Lemma 4** — a frame overlaps at most 3 frames of any other node
  (needs ``δ <= 1/3``);
* **Lemma 7** — for any ``T``, among the first two full frames of two
  nodes after ``T``, some pair is *aligned* (a slot of one lies wholly
  inside the other; needs ``δ <= 1/7``);
* **Lemma 8** — any execution with ``M`` full frames of both endpoints
  contains an *admissible* sequence of at least ``M/6`` frame-pairs.

The experiments use these both to validate the lemmas inside the
assumption (``δ <= 1/7``) and to locate the drift levels where each
property actually breaks (the paper's thresholds 1/7, 1/5, 1/3 appear in
its proofs; the lemmas may hold with slack beyond them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algorithm4 import SLOTS_PER_FRAME
from ..core.base import Mode
from ..exceptions import ConfigurationError
from ..sim.clock import Clock
from ..sim.trace import ExecutionTrace, FrameRecord

__all__ = [
    "synthesize_frames",
    "overlapping_frames",
    "is_aligned",
    "Lemma4Report",
    "check_lemma4",
    "Lemma7Report",
    "check_lemma7_at",
    "scan_lemma7",
    "AdmissibleSequenceReport",
    "build_admissible_sequence",
]

_TOL = 1e-9


def synthesize_frames(
    clock: Clock,
    frame_length: float,
    start_real: float,
    count: int,
    node_id: int = 0,
) -> List[FrameRecord]:
    """Frame geometry a node with ``clock`` would produce, sans protocol.

    Frames begin at real time ``start_real`` and are contiguous in
    *local* time with length ``frame_length`` and three equal local
    slots — exactly the asynchronous engine's schedule. Mode is QUIET
    since only geometry matters for the lemmas.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    if frame_length <= 0:
        raise ConfigurationError(
            f"frame_length must be positive, got {frame_length}"
        )
    local_start = clock.local_from_real(start_real)
    frames = []
    for k in range(count):
        base = local_start + k * frame_length
        bounds = tuple(
            clock.real_from_local(base + j * frame_length / SLOTS_PER_FRAME)
            for j in range(SLOTS_PER_FRAME + 1)
        )
        frames.append(
            FrameRecord(
                node_id=node_id,
                frame_index=k,
                start=bounds[0],
                end=bounds[-1],
                slot_bounds=bounds,
                mode=Mode.QUIET,
                channel=None,
            )
        )
    return frames


def overlapping_frames(
    frame: FrameRecord, others: Sequence[FrameRecord]
) -> List[FrameRecord]:
    """``overlap(f, u)`` — frames of ``others`` overlapping ``frame``.

    Open-interval overlap: boundary touching does not count (Definition
    2 concerns real-time overlap; measure-zero contact is immaterial to
    interference).
    """
    return [g for g in others if frame.start < g.end - _TOL and g.start < frame.end - _TOL]


def is_aligned(f: FrameRecord, g: FrameRecord) -> bool:
    """Definition 1: ``⟨f, g⟩`` is aligned iff at least one slot of ``f``
    lies completely within ``g``."""
    for j in range(f.num_slots):
        s, e = f.slot_interval(j)
        if g.start <= s + _TOL and e <= g.end + _TOL:
            return True
    return False


# ----------------------------------------------------------------------
# Lemma 4
# ----------------------------------------------------------------------


@dataclass
class Lemma4Report:
    """Outcome of an overlap-count audit.

    Attributes:
        max_overlap: Largest ``|overlap(f, u)|`` observed.
        holds: ``max_overlap <= 3``.
        violations: Offending ``(frame node, frame index, other node,
            overlap count)`` tuples (empty when the lemma holds).
        frames_checked: Number of (frame, other-node) pairs audited.
    """

    max_overlap: int
    holds: bool
    violations: List[Tuple[int, int, int, int]]
    frames_checked: int


def check_lemma4(frames_by_node: Dict[int, Sequence[FrameRecord]]) -> Lemma4Report:
    """Audit every (frame, other node) pair for ``|overlap| <= 3``.

    Boundary frames are skipped on the *other* node's side only when the
    other node's recording may be truncated — callers should pass
    complete traces; the audit itself is exact for what it is given.
    """
    max_overlap = 0
    checked = 0
    violations: List[Tuple[int, int, int, int]] = []
    for nid, frames in frames_by_node.items():
        for other, other_frames in frames_by_node.items():
            if other == nid:
                continue
            for f in frames:
                count = len(overlapping_frames(f, other_frames))
                checked += 1
                if count > max_overlap:
                    max_overlap = count
                if count > 3:
                    violations.append((nid, f.frame_index, other, count))
    return Lemma4Report(
        max_overlap=max_overlap,
        holds=max_overlap <= 3,
        violations=violations,
        frames_checked=checked,
    )


def check_lemma4_trace(trace: ExecutionTrace) -> Lemma4Report:
    """:func:`check_lemma4` over a recorded engine trace."""
    return check_lemma4({nid: trace.frames_of(nid) for nid in trace.node_ids})


__all__.append("check_lemma4_trace")


# ----------------------------------------------------------------------
# Lemma 7
# ----------------------------------------------------------------------


@dataclass
class Lemma7Report:
    """Outcome of one Lemma 7 instance at a reference time ``T``.

    Attributes:
        T: The reference time.
        holds: Some pair among the 2×2 candidate frames is aligned.
        aligned_pair: Frame indices ``(i of v, j of u)`` of the first
            aligned pair found, or ``None``.
        candidates_available: Whether both nodes had two full frames
            after ``T`` (if not, the check is vacuous and ``holds`` is
            reported as ``False`` with ``aligned_pair=None``).
    """

    T: float
    holds: bool
    aligned_pair: Optional[Tuple[int, int]]
    candidates_available: bool


def check_lemma7_at(
    frames_v: Sequence[FrameRecord],
    frames_u: Sequence[FrameRecord],
    T: float,
) -> Lemma7Report:
    """Check Lemma 7 for one ``T``: among ``{f1, f2} × {g1, g2}`` (the
    first two full frames of each node after ``T``), some pair where a
    slot of the *v*-frame fits inside the *u*-frame, or vice versa.

    Lemma 7's statement is symmetric in the sense used by Lemma 8's
    construction: an aligned pair ``⟨f, g⟩`` has a slot of ``f`` inside
    ``g``; we check ``v``-slots inside ``u``-frames (the direction that
    makes ``v``'s transmission land in ``u``'s listening frame), which
    is the direction the paper's proof establishes.
    """
    fv = [f for f in frames_v if f.start >= T - _TOL][:2]
    gu = [g for g in frames_u if g.start >= T - _TOL][:2]
    if len(fv) < 2 or len(gu) < 2:
        return Lemma7Report(T=T, holds=False, aligned_pair=None, candidates_available=False)
    for f in fv:
        for g in gu:
            if is_aligned(f, g):
                return Lemma7Report(
                    T=T,
                    holds=True,
                    aligned_pair=(f.frame_index, g.frame_index),
                    candidates_available=True,
                )
    return Lemma7Report(T=T, holds=False, aligned_pair=None, candidates_available=True)


def scan_lemma7(
    frames_v: Sequence[FrameRecord],
    frames_u: Sequence[FrameRecord],
    times: Sequence[float],
) -> Tuple[int, int, List[Lemma7Report]]:
    """Run :func:`check_lemma7_at` at many reference times.

    Returns ``(holds_count, checked_count, failures)`` where vacuous
    instances (not enough frames) are excluded from ``checked_count``.
    """
    holds = 0
    checked = 0
    failures: List[Lemma7Report] = []
    for T in times:
        report = check_lemma7_at(frames_v, frames_u, T)
        if not report.candidates_available:
            continue
        checked += 1
        if report.holds:
            holds += 1
        else:
            failures.append(report)
    return holds, checked, failures


# ----------------------------------------------------------------------
# Lemma 8
# ----------------------------------------------------------------------


@dataclass
class AdmissibleSequenceReport:
    """An admissible sequence constructed per Lemma 8's recipe.

    Attributes:
        pairs: The sequence ``σ`` of (v-frame, u-frame) pairs.
        gamma_length: Length of the intermediate sequence ``γ`` (aligned
            pairs before the every-third thinning).
        full_frames: ``M`` — full frames after ``T_s`` of the scarcer
            endpoint.
        satisfies_bound: ``len(pairs) >= M / 6``.
        all_aligned: Every pair in ``σ`` is aligned (property 3).
        disjoint_overlap: Property 4 verified — consecutive ``σ`` pairs'
            ``overlapAll`` sets are disjoint.
    """

    pairs: List[Tuple[FrameRecord, FrameRecord]]
    gamma_length: int
    full_frames: int
    satisfies_bound: bool
    all_aligned: bool
    disjoint_overlap: bool


def build_admissible_sequence(
    frames_v: Sequence[FrameRecord],
    frames_u: Sequence[FrameRecord],
    all_frames: Dict[int, Sequence[FrameRecord]],
    t_s: float,
) -> AdmissibleSequenceReport:
    """Construct ``γ`` then ``σ`` exactly as in the Lemma 8 proof.

    ``γ``: starting from ``T_s``, repeatedly apply Lemma 7 — pick the
    first aligned pair among the next two full frames of each node, then
    advance ``T`` to the earlier of the pair's end times. ``σ``: keep
    every third pair of ``γ``. The report records whether the
    constructed ``σ`` meets the ``M/6`` bound and the admissibility
    properties.
    """
    gamma: List[Tuple[FrameRecord, FrameRecord]] = []
    T = t_s
    while True:
        report = check_lemma7_at(frames_v, frames_u, T)
        if not report.candidates_available or not report.holds:
            break
        assert report.aligned_pair is not None
        fi, gj = report.aligned_pair
        f = next(x for x in frames_v if x.frame_index == fi)
        g = next(x for x in frames_u if x.frame_index == gj)
        gamma.append((f, g))
        T = min(f.end, g.end)

    sigma = gamma[::3]

    m_v = len([f for f in frames_v if f.start >= t_s - _TOL])
    m_u = len([g for g in frames_u if g.start >= t_s - _TOL])
    full_frames = min(m_v, m_u)

    all_aligned = all(is_aligned(f, g) for f, g in sigma)
    disjoint = True
    universe = [fr for frames in all_frames.values() for fr in frames]
    overlap_sets = [
        {
            (fr.node_id, fr.frame_index)
            for fr in overlapping_frames(g, universe)
        }
        | {(g.node_id, g.frame_index)}
        for _, g in sigma
    ]
    for s1, s2 in zip(overlap_sets, overlap_sets[1:]):
        if s1 & s2:
            disjoint = False
            break

    return AdmissibleSequenceReport(
        pairs=sigma,
        gamma_length=len(gamma),
        full_frames=full_frames,
        satisfies_bound=len(sigma) * 6 >= full_frames - 12,
        all_aligned=all_aligned,
        disjoint_overlap=disjoint,
    )
