"""ASCII timelines of asynchronous executions (the paper's Figures 1-2).

Figure 1 of the paper shows one node's frames and slots against its
local clock; Figure 2 shows several nodes' frames against real time,
misaligned and stretched by drift. :func:`render_timeline` reproduces
the latter from an :class:`~repro.sim.trace.ExecutionTrace` (or any
frame lists): one row per node, ``|`` at frame boundaries, ``.`` at
slot boundaries, ``T``/``L``/``q`` fill for transmit/listen/quiet
frames. Used by examples and handy when debugging alignment issues.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..core.base import Mode
from ..exceptions import ConfigurationError
from ..sim.trace import ExecutionTrace, FrameRecord

__all__ = ["render_timeline", "render_trace"]

_FILL = {Mode.TRANSMIT: "T", Mode.LISTEN: "L", Mode.QUIET: "q"}


def render_timeline(
    frames_by_node: Mapping[int, Sequence[FrameRecord]],
    start: float,
    end: float,
    width: int = 100,
) -> str:
    """Render frames of several nodes over ``[start, end]`` as text.

    Args:
        frames_by_node: Frame records per node (time-ordered).
        start: Left edge of the window (real time).
        end: Right edge of the window.
        width: Characters across the window.

    Returns:
        One line per node (sorted by id) plus an axis line.
    """
    if end <= start:
        raise ConfigurationError(f"need end > start, got [{start}, {end}]")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    if not frames_by_node:
        raise ConfigurationError("no frames supplied")

    scale = width / (end - start)

    def col(t: float) -> Optional[int]:
        if t < start or t > end:
            return None
        return min(width - 1, int((t - start) * scale))

    lines: List[str] = []
    for nid in sorted(frames_by_node):
        row = [" "] * width
        for frame in frames_by_node[nid]:
            if frame.end < start or frame.start > end:
                continue
            fill = _FILL.get(frame.mode, "?")
            left = col(max(frame.start, start))
            right = col(min(frame.end, end))
            if left is None or right is None:
                continue
            for x in range(left, right + 1):
                row[x] = fill
            for bound in frame.slot_bounds[1:-1]:
                x = col(bound)
                if x is not None:
                    row[x] = "."
            for edge in (frame.start, frame.end):
                x = col(edge)
                if x is not None:
                    row[x] = "|"
        lines.append(f"node {nid:>3} {''.join(row)}")

    axis = [" "] * width
    axis[0] = "+"
    axis[-1] = "+"
    header = " " * 9 + "".join(axis)
    footer = f"{'':9}{start:<{width // 2}.1f}{end:>{width - width // 2}.1f}"
    lines.append(header)
    lines.append(footer)
    return "\n".join(lines)


def render_trace(
    trace: ExecutionTrace,
    start: float,
    end: float,
    width: int = 100,
    nodes: Optional[Sequence[int]] = None,
) -> str:
    """:func:`render_timeline` over a recorded engine trace."""
    selected = nodes if nodes is not None else trace.node_ids
    frames: Dict[int, Sequence[FrameRecord]] = {
        nid: trace.frames_of(nid) for nid in selected
    }
    return render_timeline(frames, start, end, width)
