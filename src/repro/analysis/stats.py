"""Small statistics helpers used across experiments.

Self-contained (no scipy dependency): normal-approximation confidence
intervals for means, Wilson intervals for proportions, percentiles and
a compact :class:`SampleSummary` used in sweep tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "SampleSummary",
    "summarize",
    "mean",
    "sample_std",
    "percentile",
    "mean_confidence_interval",
    "wilson_interval",
    "geometric_mean",
    "welch_ci_margin",
]

# Two-sided z for 95% — experiments report 95% CIs throughout.
_Z95 = 1.959963984540054


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ConfigurationError("mean of empty sample")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation; 0.0 for singletons."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("std of empty sample")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ConfigurationError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def mean_confidence_interval(
    values: Sequence[float], z: float = _Z95
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean: ``mean ± z·s/√n``."""
    m = mean(values)
    half = z * sample_std(values) / math.sqrt(len(values))
    return (m - half, m + half)


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved near 0 and 1 — exactly where success probabilities land
    when checking "discovery completes w.p. >= 1 − ε".
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes {successes} outside [0, {trials}]"
        )
    p = successes / trials
    z2 = z * z
    denom = 1 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def welch_ci_margin(
    std1: float, n1: int, std2: float, n2: int, z: float = 3.0
) -> float:
    """Half-width of a ``z``-sigma Welch interval for a mean difference.

    Two samples' means are distinguishable when
    ``abs(mean1 - mean2) > welch_ci_margin(std1, n1, std2, n2)`` —
    the criterion both the differential engine tests and the tournament
    league use (default ``z = 3``: conservative, so "wins" are earned).
    The ``1e-9`` slack keeps zero-variance degenerate samples (e.g. the
    deterministic scan baseline) from flagging on float noise.
    """
    if n1 <= 0 or n2 <= 0:
        raise ConfigurationError(
            f"sample sizes must be positive, got {n1} and {n2}"
        )
    return z * math.sqrt(std1 * std1 / n1 + std2 * std2 / n2) + 1e-9


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (for speedup ratios)."""
    if not values:
        raise ConfigurationError("geometric mean of empty sample")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class SampleSummary:
    """Summary of one numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        """Row form for table rendering."""
        return {
            "n": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "max": self.maximum,
            "ci95_low": self.ci_low,
            "ci95_high": self.ci_high,
        }


def summarize(values: Iterable[float]) -> SampleSummary:
    """Full :class:`SampleSummary` of a sample."""
    data: List[float] = [float(v) for v in values]
    if not data:
        raise ConfigurationError("summarize of empty sample")
    lo, hi = mean_confidence_interval(data)
    return SampleSummary(
        count=len(data),
        mean=mean(data),
        std=sample_std(data),
        minimum=min(data),
        median=percentile(data, 50),
        p90=percentile(data, 90),
        maximum=max(data),
        ci_low=lo,
        ci_high=hi,
    )
