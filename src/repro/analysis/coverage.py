"""Monte-Carlo estimation of the paper's coverage probabilities.

The heart of every proof in the paper is a lower bound on the
probability that one slot (synchronous) or one aligned frame-pair
(asynchronous) *covers* a link — eqs. (3)–(6), (9) and Lemma 5. These
estimators measure those probabilities directly by sampling the
protocols' per-slot randomness, without running a full engine, so the
measured values can be placed next to the analytic lower bounds
(experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..net.links import DirectedLink
from ..net.network import M2HeWNetwork
from .stats import wilson_interval

__all__ = [
    "matched_slot_index",
    "alg1_slot_probability",
    "alg3_slot_probability",
    "alg4_frame_probability",
    "CoverageEstimate",
    "estimate_link_coverage",
    "EventEstimates",
    "estimate_event_probabilities",
    "estimate_aligned_pair_coverage",
]


def matched_slot_index(degree: int) -> int:
    """``k = max(1, ceil(log2 Δ(u, c)))`` — the stage slot satisfying
    eq. (2) for a link of degree ``degree``."""
    if degree < 1:
        raise ConfigurationError(f"degree must be >= 1, got {degree}")
    return max(1, math.ceil(math.log2(degree)))


def alg1_slot_probability(channel_count: int, slot_in_stage: int) -> float:
    """Algorithm 1's ``min(1/2, |A(u)| / 2^i)``."""
    if slot_in_stage < 1:
        raise ConfigurationError(f"slot_in_stage is 1-based, got {slot_in_stage}")
    return min(0.5, channel_count / float(2 ** slot_in_stage))


def alg3_slot_probability(channel_count: int, delta_est: int) -> float:
    """Algorithm 3's ``min(1/2, |A(u)| / Δ_est)``."""
    return min(0.5, channel_count / float(delta_est))


def alg4_frame_probability(channel_count: int, delta_est: int) -> float:
    """Algorithm 4's ``min(1/2, |A(u)| / (3 Δ_est))``."""
    return min(0.5, channel_count / float(3 * delta_est))


@dataclass(frozen=True)
class CoverageEstimate:
    """An estimated coverage probability with a Wilson 95% interval."""

    successes: int
    trials: int
    probability: float
    ci_low: float
    ci_high: float

    @classmethod
    def from_counts(cls, successes: int, trials: int) -> "CoverageEstimate":
        lo, hi = wilson_interval(successes, trials)
        return cls(
            successes=successes,
            trials=trials,
            probability=successes / trials,
            ci_low=lo,
            ci_high=hi,
        )

    def at_least(self, bound: float) -> bool:
        """Whether the estimate is consistent with ``probability >= bound``
        (the bound must not exceed the upper CI edge)."""
        return self.ci_high >= bound


def _simulate_slot(
    network: M2HeWNetwork,
    probabilities: Mapping[int, float],
    rng: np.random.Generator,
) -> Tuple[Dict[int, int], Dict[int, bool]]:
    """One synchronous slot of the uniform-channel template.

    Returns ``(channel chosen per node, transmitted? per node)``.
    """
    chans: Dict[int, int] = {}
    transmits: Dict[int, bool] = {}
    for nid in network.node_ids:
        available = sorted(network.channels_of(nid))
        chans[nid] = available[int(rng.integers(0, len(available)))]
        transmits[nid] = bool(rng.random() < probabilities[nid])
    return chans, transmits


def estimate_link_coverage(
    network: M2HeWNetwork,
    link: DirectedLink,
    probabilities: Mapping[int, float],
    trials: int,
    rng: np.random.Generator,
) -> CoverageEstimate:
    """Estimate the probability that one slot covers ``link``.

    Coverage (§III-A1): the transmitter sends on a span channel, the
    receiver listens on that same channel, and no other node the
    receiver hears transmits on it.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    v, u = link.transmitter, link.receiver
    hears_u = network.hears(u)
    successes = 0
    for _ in range(trials):
        chans, transmits = _simulate_slot(network, probabilities, rng)
        c = chans[v]
        if not transmits[v] or c not in link.span:
            continue
        if transmits[u] or chans[u] != c:
            continue
        interfered = any(
            w != v and transmits[w] and chans[w] == c
            for w in hears_u
        )
        if not interfered:
            successes += 1
    return CoverageEstimate.from_counts(successes, trials)


@dataclass(frozen=True)
class EventEstimates:
    """Empirical probabilities of the three coverage events on a channel."""

    pr_transmit: CoverageEstimate
    pr_listen: CoverageEstimate
    pr_no_interference: CoverageEstimate


def estimate_event_probabilities(
    network: M2HeWNetwork,
    link: DirectedLink,
    channel: int,
    probabilities: Mapping[int, float],
    trials: int,
    rng: np.random.Generator,
) -> EventEstimates:
    """Estimate ``Pr{A(τ,c)}``, ``Pr{B(τ,c)}``, ``Pr{C(τ,c)}`` separately.

    ``A``: transmitter sends on ``channel``; ``B``: receiver listens on
    ``channel``; ``C``: no other audible node transmits on ``channel``.
    The three are measured from the same slot samples (they are
    independent events, but sharing samples is fine for estimation).
    """
    if channel not in link.span:
        raise ConfigurationError(
            f"channel {channel} not in span of link {link.key}"
        )
    v, u = link.transmitter, link.receiver
    hears_u = network.hears(u)
    a = b = c_ok = 0
    for _ in range(trials):
        chans, transmits = _simulate_slot(network, probabilities, rng)
        if transmits[v] and chans[v] == channel:
            a += 1
        if not transmits[u] and chans[u] == channel:
            b += 1
        if not any(
            w != v and transmits[w] and chans[w] == channel for w in hears_u
        ):
            c_ok += 1
    return EventEstimates(
        pr_transmit=CoverageEstimate.from_counts(a, trials),
        pr_listen=CoverageEstimate.from_counts(b, trials),
        pr_no_interference=CoverageEstimate.from_counts(c_ok, trials),
    )


def estimate_aligned_pair_coverage(
    network: M2HeWNetwork,
    link: DirectedLink,
    delta_est: int,
    trials: int,
    rng: np.random.Generator,
    overlap_frames: int = 3,
) -> CoverageEstimate:
    """Estimate Lemma 5's aligned-pair coverage probability.

    Models one aligned pair ``⟨f, g⟩``: the transmitter draws its frame
    decision once; the receiver draws once; every other node the
    receiver hears draws ``overlap_frames`` independent frame decisions
    (Lemma 4 caps the frames of an interferer overlapping ``g`` at 3 —
    the estimator uses the cap as the worst case, matching the Lemma 5
    derivation).
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if overlap_frames < 1:
        raise ConfigurationError(
            f"overlap_frames must be >= 1, got {overlap_frames}"
        )
    v, u = link.transmitter, link.receiver
    hears_u = sorted(network.hears(u))
    successes = 0
    for _ in range(trials):
        # Transmitter's frame.
        av = sorted(network.channels_of(v))
        cv = av[int(rng.integers(0, len(av)))]
        pv = alg4_frame_probability(len(av), delta_est)
        if rng.random() >= pv or cv not in link.span:
            continue
        # Receiver's frame.
        au = sorted(network.channels_of(u))
        cu = au[int(rng.integers(0, len(au)))]
        pu = alg4_frame_probability(len(au), delta_est)
        if rng.random() < pu or cu != cv:
            continue
        # Interferers: each audible node w != v transmits on cv in any of
        # its overlapping frames.
        interfered = False
        for w in hears_u:
            if w == v:
                continue
            aw = sorted(network.channels_of(w))
            pw = alg4_frame_probability(len(aw), delta_est)
            for _frame in range(overlap_frames):
                cw = aw[int(rng.integers(0, len(aw)))]
                if cw == cv and rng.random() < pw:
                    interfered = True
                    break
            if interfered:
                break
        if not interfered:
            successes += 1
    return CoverageEstimate.from_counts(successes, trials)
