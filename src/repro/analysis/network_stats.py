"""Structural statistics of M2HeW network instances.

Experiments report not just ``N, S, Δ, ρ`` but how heterogeneity is
*distributed*: per-channel degree profiles, span-size histograms,
availability overlap between neighbors. These summaries drive workload
sanity checks ("is this instance actually heterogeneous?") and the
``m2hew info --detail`` CLI view.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..exceptions import NetworkModelError
from ..net.network import M2HeWNetwork

__all__ = ["NetworkProfile", "profile_network"]


@dataclass(frozen=True)
class NetworkProfile:
    """Distributional summary of one network instance.

    Attributes:
        channel_set_sizes: Histogram of ``|A(u)|`` values.
        span_sizes: Histogram of link span sizes.
        span_ratios: Sorted span-ratios of all links.
        per_channel_links: Directed links operating on each channel
            (a link counts for every channel in its span).
        per_channel_max_degree: ``max_u Δ(u, c)`` per channel.
        mean_span_ratio: Average link span-ratio (ρ is the minimum).
        isolated_nodes: Nodes with no links at all.
        asymmetric_links: Directed links whose reverse does not exist.
    """

    channel_set_sizes: Dict[int, int]
    span_sizes: Dict[int, int]
    span_ratios: Tuple[float, ...]
    per_channel_links: Dict[int, int]
    per_channel_max_degree: Dict[int, int]
    mean_span_ratio: float
    isolated_nodes: Tuple[int, ...]
    asymmetric_links: int

    def as_rows(self) -> List[Dict[str, object]]:
        """Per-channel row form for table rendering."""
        return [
            {
                "channel": c,
                "links_using": self.per_channel_links.get(c, 0),
                "max_degree": self.per_channel_max_degree.get(c, 0),
            }
            for c in sorted(self.per_channel_max_degree)
        ]

    @property
    def heterogeneity_index(self) -> float:
        """``1 − mean span-ratio`` — 0 for fully homogeneous networks."""
        return 1.0 - self.mean_span_ratio


def profile_network(network: M2HeWNetwork) -> NetworkProfile:
    """Compute a :class:`NetworkProfile` for ``network``.

    Raises:
        NetworkModelError: If the network has no links — there is no
            discovery problem to profile.
    """
    links = network.links()
    if not links:
        raise NetworkModelError("network has no links; nothing to profile")

    set_sizes = Counter(
        len(network.channels_of(nid)) for nid in network.node_ids
    )
    span_sizes = Counter(len(link.span) for link in links)
    ratios = tuple(sorted(link.span_ratio for link in links))

    per_channel_links: Counter = Counter()
    for link in links:
        for c in link.span:
            per_channel_links[c] += 1

    per_channel_max_degree: Dict[int, int] = {}
    for c in network.universal_channel_set:
        best = 0
        for nid in network.node_ids:
            best = max(best, network.degree_on(nid, c))
        per_channel_max_degree[c] = best

    link_keys = {link.key for link in links}
    asymmetric = sum(1 for (a, b) in link_keys if (b, a) not in link_keys)

    covered_nodes = {link.transmitter for link in links} | {
        link.receiver for link in links
    }
    isolated = tuple(
        nid for nid in network.node_ids if nid not in covered_nodes
    )

    return NetworkProfile(
        channel_set_sizes=dict(set_sizes),
        span_sizes=dict(span_sizes),
        span_ratios=ratios,
        per_channel_links=dict(per_channel_links),
        per_channel_max_degree=per_channel_max_degree,
        mean_span_ratio=sum(ratios) / len(ratios),
        isolated_nodes=isolated,
        asymmetric_links=asymmetric,
    )
