"""Energy accounting for discovery protocols.

Neighbor discovery is usually the first thing a battery-powered node
does after deployment, so its energy cost matters as much as its
latency (the birthday-protocol line of work [1] is explicitly about
"low energy deployment"). The engines count each node's radio activity
— slots/seconds spent transmitting, listening and quiet — and this
module turns those counts into energy figures under a standard radio
power model.

Usage::

    result = sim.run_synchronous(...)
    model = EnergyModel.cc2420()
    report = energy_report(result, model, slot_seconds=0.01)
    report.total_joules, report.per_node[3]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..exceptions import ConfigurationError
from ..sim.results import DiscoveryResult

__all__ = ["EnergyModel", "NodeEnergy", "EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyModel:
    """Radio power draw per mode, in watts.

    Attributes:
        tx_watts: Power while transmitting.
        rx_watts: Power while listening (receive/idle-listening).
        quiet_watts: Power with the transceiver shut off (sleep).
    """

    tx_watts: float
    rx_watts: float
    quiet_watts: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tx_watts", "rx_watts", "quiet_watts"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @classmethod
    def cc2420(cls) -> "EnergyModel":
        """The classic 802.15.4 radio's datasheet numbers (~2006):
        17.4 mA tx @ 0 dBm, 18.8 mA rx, ~1 uA sleep, at 3.0 V."""
        return cls(tx_watts=0.0522, rx_watts=0.0564, quiet_watts=3e-6)

    @classmethod
    def unit(cls) -> "EnergyModel":
        """1 W in every active mode — energy equals active radio time."""
        return cls(tx_watts=1.0, rx_watts=1.0, quiet_watts=0.0)

    def energy(self, tx_s: float, rx_s: float, quiet_s: float) -> float:
        """Joules for the given per-mode durations (seconds)."""
        return (
            self.tx_watts * tx_s
            + self.rx_watts * rx_s
            + self.quiet_watts * quiet_s
        )


@dataclass(frozen=True)
class NodeEnergy:
    """One node's radio time and energy."""

    node_id: int
    tx_seconds: float
    rx_seconds: float
    quiet_seconds: float
    joules: float

    @property
    def duty_cycle(self) -> float:
        """Active fraction: (tx + rx) / total radio time."""
        total = self.tx_seconds + self.rx_seconds + self.quiet_seconds
        if total == 0:
            return 0.0
        return (self.tx_seconds + self.rx_seconds) / total


@dataclass(frozen=True)
class EnergyReport:
    """Energy of a whole discovery run."""

    per_node: Dict[int, NodeEnergy]
    total_joules: float
    mean_joules: float
    max_joules: float
    joules_per_link: Optional[float]

    def as_rows(self):
        """Row form for table rendering."""
        return [
            {
                "node": ne.node_id,
                "tx_s": round(ne.tx_seconds, 4),
                "rx_s": round(ne.rx_seconds, 4),
                "quiet_s": round(ne.quiet_seconds, 4),
                "joules": round(ne.joules, 6),
                "duty_cycle": round(ne.duty_cycle, 4),
            }
            for ne in sorted(self.per_node.values(), key=lambda n: n.node_id)
        ]


def _activity_from_result(result: DiscoveryResult) -> Mapping[int, Mapping[str, float]]:
    activity = result.metadata.get("radio_activity")
    if activity is None:
        raise ConfigurationError(
            "result carries no radio_activity metadata; run with an engine "
            "that records it (all bundled engines do)"
        )
    return activity  # type: ignore[return-value]


def energy_report(
    result: DiscoveryResult,
    model: EnergyModel,
    slot_seconds: float = 1.0,
) -> EnergyReport:
    """Energy for one run.

    Args:
        result: A discovery result with ``radio_activity`` metadata.
            Synchronous results count slots (scaled by ``slot_seconds``);
            asynchronous results already carry seconds.
        model: Radio power model.
        slot_seconds: Real duration of one synchronous slot; ignored for
            asynchronous results.
    """
    if slot_seconds <= 0:
        raise ConfigurationError(
            f"slot_seconds must be positive, got {slot_seconds}"
        )
    scale = slot_seconds if result.time_unit == "slots" else 1.0
    activity = _activity_from_result(result)

    per_node: Dict[int, NodeEnergy] = {}
    for nid, modes in activity.items():
        tx = float(modes.get("tx", 0.0)) * scale
        rx = float(modes.get("rx", 0.0)) * scale
        quiet = float(modes.get("quiet", 0.0)) * scale
        per_node[int(nid)] = NodeEnergy(
            node_id=int(nid),
            tx_seconds=tx,
            rx_seconds=rx,
            quiet_seconds=quiet,
            joules=model.energy(tx, rx, quiet),
        )

    joules = [ne.joules for ne in per_node.values()]
    total = sum(joules)
    links = result.num_covered
    return EnergyReport(
        per_node=per_node,
        total_joules=total,
        mean_joules=total / len(joules) if joules else 0.0,
        max_joules=max(joules) if joules else 0.0,
        joules_per_link=(total / links) if links else None,
    )
