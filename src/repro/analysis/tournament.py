"""Protocol tournament: race every registered protocol through a league.

A tournament is a grid of *cells* — (workload, fault preset) pairs —
times the registered synchronous protocols. Every protocol runs the
same seeded trials on the same realized network per cell, so cells
compare protocols under identical randomness; the only thing that
varies inside a cell is the protocol.

The tournament rides on :func:`~repro.sim.batch.run_batch` (one
:class:`~repro.sim.batch.ExperimentSpec` per cell × protocol, named
``<cell>__<protocol>``), so it inherits the whole campaign contract for
free: checksummed archives, worker-count byte-invariance, vectorized
batching where the registry allows it, and per-trial replay seeds.

Ranking is deliberately conservative: within a cell, protocol A *beats*
protocol B only when their censored mean completion times differ by
more than a 3-sigma Welch margin (:func:`~repro.analysis.stats.
welch_ci_margin`) — the same criterion the differential engine tests
use. Incomplete trials are censored at the slot horizon, so a protocol
that never finishes is penalized, not dropped. Standings sort by
(wins desc, losses asc, mean asc, name) — fully deterministic, so the
league table is byte-reproducible from ``(cells, protocols, trials,
base_seed, max_slots)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ConfigurationError
from ..faults.presets import FAULT_PRESETS, fault_preset
from ..sim.batch import BatchOutcome, ExperimentSpec, run_batch
from ..sim.results import DiscoveryResult
from ..sim.runner import SYNC_PROTOCOLS, experiment_runner_params
from ..workloads.generator import WorkloadConfig, generate_network
from .stats import SampleSummary, summarize, welch_ci_margin
from .tables import format_table

__all__ = [
    "DEFAULT_MAX_SLOTS",
    "DEFAULT_TRIALS",
    "ProtocolStanding",
    "TournamentCell",
    "TournamentResult",
    "default_league",
    "run_tournament",
]

#: Trials per cell × protocol when the caller does not choose.
DEFAULT_TRIALS = 15

#: Slot budget per trial; incomplete runs are censored at this horizon.
DEFAULT_MAX_SLOTS = 30_000


@dataclass(frozen=True)
class TournamentCell:
    """One league fixture: a workload, a degree bound, optional faults.

    Attributes:
        name: Unique cell label; experiment names derive from it.
        workload: The network recipe every protocol in the cell runs on.
        delta_est: Degree bound handed to protocols that need one.
        fault_preset: Optional name from
            :data:`~repro.faults.presets.FAULT_PRESETS`; ``None`` races
            on a clean channel.
        network_seed: Seed realizing the workload (one instance per
            cell, shared by every protocol).
    """

    name: str
    workload: WorkloadConfig
    delta_est: int
    fault_preset: Optional[str] = None
    network_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or "__" in self.name:
            raise ConfigurationError(
                "cell name must be a non-empty label without '/' or '__', "
                f"got {self.name!r}"
            )
        if self.fault_preset is not None and self.fault_preset not in FAULT_PRESETS:
            raise ConfigurationError(
                f"unknown fault preset {self.fault_preset!r}; choose from "
                f"{sorted(FAULT_PRESETS)}"
            )


@dataclass(frozen=True)
class ProtocolStanding:
    """One protocol's record within a cell (or the overall league).

    ``wins`` / ``losses`` count pairwise 3-sigma-significant
    comparisons; ties (insignificant differences) count for neither.
    """

    protocol: str
    summary: SampleSummary
    completed_fraction: float
    wins: int
    losses: int

    def as_row(self) -> Dict[str, Any]:
        """Row form for table rendering."""
        return {
            "protocol": self.protocol,
            "wins": self.wins,
            "losses": self.losses,
            "mean_slots": self.summary.mean,
            "ci95_low": self.summary.ci_low,
            "ci95_high": self.summary.ci_high,
            "completed": round(self.completed_fraction, 3),
            "trials": self.summary.count,
        }


def default_league() -> Tuple[TournamentCell, ...]:
    """The small standing league (EXPERIMENTS.md E20; CI smoke).

    Three fixtures covering the regimes the rivals were built for: a
    clean dense cell, a sparse heterogeneous cell under bursty loss,
    and a multi-hop cell under light jamming.
    """
    return (
        TournamentCell(
            name="clique_clean",
            workload=WorkloadConfig(
                topology="clique",
                topology_params={"num_nodes": 6},
                channel_model="homogeneous",
                channel_params={"num_channels": 3},
            ),
            delta_est=8,
        ),
        TournamentCell(
            name="ring_bursty",
            workload=WorkloadConfig(
                topology="ring",
                topology_params={"num_nodes": 8},
                channel_model="uniform_random_subsets",
                channel_params={"universal_size": 4, "set_size": 2},
                repair_overlap=True,
            ),
            delta_est=4,
            fault_preset="bursty_loss",
        ),
        TournamentCell(
            name="grid_jammed",
            workload=WorkloadConfig(
                topology="grid",
                topology_params={"rows": 3, "cols": 3},
                channel_model="common_channel_plus_random",
                channel_params={"universal_size": 4, "set_size": 2},
            ),
            delta_est=6,
            fault_preset="jamming_light",
        ),
    )


def _censored_times(results: Sequence[DiscoveryResult]) -> List[float]:
    """Completion times with incomplete trials censored at the horizon."""
    return [
        float(r.completion_time) if r.completion_time is not None else float(r.horizon)
        for r in results
    ]


def _rank(standings: List[ProtocolStanding]) -> List[ProtocolStanding]:
    return sorted(
        standings,
        key=lambda s: (-s.wins, s.losses, s.summary.mean, s.protocol),
    )


def _pairwise_records(
    samples: Dict[str, Tuple[SampleSummary, float]],
) -> List[ProtocolStanding]:
    standings = []
    for protocol, (summary, completed) in samples.items():
        wins = losses = 0
        for other, (other_summary, _) in samples.items():
            if other == protocol:
                continue
            margin = welch_ci_margin(
                summary.std, summary.count, other_summary.std, other_summary.count
            )
            if abs(summary.mean - other_summary.mean) <= margin:
                continue
            if summary.mean < other_summary.mean:
                wins += 1
            else:
                losses += 1
        standings.append(
            ProtocolStanding(protocol, summary, completed, wins, losses)
        )
    return _rank(standings)


@dataclass
class TournamentResult:
    """Everything one tournament produced, ready to render or archive."""

    cells: Tuple[TournamentCell, ...]
    protocols: Tuple[str, ...]
    trials: int
    base_seed: Optional[int]
    max_slots: int
    #: Cell name -> standings, best record first.
    standings: Dict[str, List[ProtocolStanding]] = field(default_factory=dict)
    outcomes: List[BatchOutcome] = field(default_factory=list)

    def overall(self) -> List[ProtocolStanding]:
        """League totals: per-protocol records summed across cells.

        The summary aggregates every cell's censored completion times
        into one pooled sample (cells share trial counts, so pooling
        weighs them equally).
        """
        pooled: Dict[str, List[float]] = {p: [] for p in self.protocols}
        completed: Dict[str, List[float]] = {p: [] for p in self.protocols}
        wins: Dict[str, int] = {p: 0 for p in self.protocols}
        losses: Dict[str, int] = {p: 0 for p in self.protocols}
        for outcome in self.outcomes:
            protocol = outcome.spec.protocol
            pooled[protocol].extend(_censored_times(outcome.results))
            completed[protocol].append(outcome.completed_fraction)
        for cell_standings in self.standings.values():
            for standing in cell_standings:
                wins[standing.protocol] += standing.wins
                losses[standing.protocol] += standing.losses
        return _rank(
            [
                ProtocolStanding(
                    protocol,
                    summarize(pooled[protocol]),
                    sum(completed[protocol]) / len(completed[protocol]),
                    wins[protocol],
                    losses[protocol],
                )
                for protocol in self.protocols
            ]
        )

    def render(self) -> str:
        """The full league report: one table per cell, then the totals."""
        blocks = []
        for cell in self.cells:
            preset = cell.fault_preset or "clean"
            blocks.append(
                format_table(
                    [s.as_row() for s in self.standings[cell.name]],
                    title=(
                        f"cell {cell.name} (faults: {preset}, "
                        f"delta_est: {cell.delta_est})"
                    ),
                )
            )
        blocks.append(
            format_table(
                [s.as_row() for s in self.overall()],
                title=(
                    f"league totals ({len(self.cells)} cells x "
                    f"{self.trials} trials, base_seed {self.base_seed}, "
                    f"horizon {self.max_slots} slots)"
                ),
            )
        )
        return "\n\n".join(blocks)


def run_tournament(
    cells: Optional[Sequence[TournamentCell]] = None,
    protocols: Optional[Sequence[str]] = None,
    *,
    trials: int = DEFAULT_TRIALS,
    base_seed: Optional[int] = 0,
    max_slots: int = DEFAULT_MAX_SLOTS,
    output_dir: Optional[Union[str, Path]] = None,
    max_workers: int = 1,
    backend: str = "auto",
) -> TournamentResult:
    """Race ``protocols`` across ``cells`` and compute the league.

    Args:
        cells: League fixtures; defaults to :func:`default_league`.
        protocols: Synchronous protocol names; defaults to every
            registered name (:data:`~repro.sim.runner.SYNC_PROTOCOLS`).
        trials: Seeded trials per cell × protocol.
        base_seed: Campaign root seed — trial ``t`` of *every*
            experiment uses ``derive_trial_seed(base_seed, t)``, so
            protocols face identical randomness within a cell.
        max_slots: Per-trial slot budget (censoring horizon).
        output_dir: If given, archive raw trials + manifest through
            :func:`~repro.sim.batch.run_batch` (byte-identical for any
            worker count).
        max_workers / backend: Trial fan-out, as in ``run_batch``.
    """
    league = tuple(cells) if cells is not None else default_league()
    names = [c.name for c in league]
    if not league:
        raise ConfigurationError("tournament needs at least one cell")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate cell names: {sorted(names)}")
    contenders = tuple(protocols) if protocols is not None else SYNC_PROTOCOLS
    if len(contenders) < 2:
        raise ConfigurationError("tournament needs at least two protocols")
    for protocol in contenders:
        if protocol not in SYNC_PROTOCOLS:
            raise ConfigurationError(
                f"unknown synchronous protocol {protocol!r}; choose from "
                f"{SYNC_PROTOCOLS}"
            )

    specs = []
    for cell in league:
        network = generate_network(cell.workload, seed=cell.network_seed)
        for protocol in contenders:
            params = experiment_runner_params(
                protocol,
                network,
                delta_est=cell.delta_est,
                max_slots=max_slots,
                faults=(
                    fault_preset(cell.fault_preset) if cell.fault_preset else None
                ),
            )
            specs.append(
                ExperimentSpec(
                    name=f"{cell.name}__{protocol}",
                    workload=cell.workload,
                    protocol=protocol,
                    trials=trials,
                    network_seed=cell.network_seed,
                    runner_params=params,
                )
            )

    outcomes = run_batch(
        specs,
        base_seed,
        output_dir,
        max_workers=max_workers,
        backend=backend,
    )
    by_name = {o.spec.name: o for o in outcomes}

    result = TournamentResult(
        cells=league,
        protocols=contenders,
        trials=trials,
        base_seed=base_seed,
        max_slots=max_slots,
        outcomes=outcomes,
    )
    for cell in league:
        samples = {}
        for protocol in contenders:
            outcome = by_name[f"{cell.name}__{protocol}"]
            samples[protocol] = (
                summarize(_censored_times(outcome.results)),
                outcome.completed_fraction,
            )
        result.standings[cell.name] = _pairwise_records(samples)
    return result
