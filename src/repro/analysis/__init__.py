"""Analysis toolkit: statistics, coverage estimation, alignment checks."""

from __future__ import annotations

from . import (
    alignment,
    coverage,
    energy,
    network_stats,
    progress,
    regression,
    robustness,
    stats,
    sweeps,
    tables,
    theory,
    timeline,
    tournament,
)

__all__ = [
    "alignment",
    "coverage",
    "energy",
    "network_stats",
    "progress",
    "regression",
    "robustness",
    "stats",
    "sweeps",
    "tables",
    "theory",
    "timeline",
    "tournament",
]
