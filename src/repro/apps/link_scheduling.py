"""Collision-free link scheduling over discovered links (cf. [7]).

Input: discovery output only — per-node tables ``{neighbor: common
channels}``. Output: a TDMA schedule assigning every *bidirectional
discovered link* a (slot, channel) such that simultaneous transmissions
never collide under the M2HeW collision rules:

* a node is in at most one scheduled link per slot (half-duplex);
* two links sharing a slot and channel must not interfere: neither
  transmitter may be a discovered neighbor (on that channel) of the
  other link's receiver.

The schedule is built by greedy coloring of the conflict graph on
link-channel candidates (distance-2 edge coloring in spirit, extended
with channel reuse: node-disjoint links on different channels never
conflict — the multi-channel dividend the paper's setting offers —
while links sharing a radio always do, whatever their channels).

Because only discovered edges are used, interference from undiscovered
neighbors *could* exist if discovery were incomplete — the validator in
the tests replays the schedule on the true network to certify it, which
makes this module an end-to-end audit of discovery output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..exceptions import ConfigurationError

__all__ = ["LinkKey", "LinkSchedule", "NeighborTables", "schedule_links"]

NeighborTables = Mapping[int, Mapping[int, FrozenSet[int]]]
LinkKey = Tuple[int, int]


@dataclass(frozen=True)
class LinkSchedule:
    """A periodic TDMA schedule for the discovered links.

    Attributes:
        assignment: ``(transmitter, receiver) -> (slot, channel)``.
        num_slots: Schedule period.
    """

    assignment: Dict[LinkKey, Tuple[int, int]]
    num_slots: int

    def links_in_slot(self, slot: int) -> List[Tuple[LinkKey, int]]:
        """Links (with channel) active in ``slot``."""
        return sorted(
            (link, channel)
            for link, (s, channel) in self.assignment.items()
            if s == slot
        )

    @property
    def throughput(self) -> float:
        """Scheduled links per slot (higher = better spatial/channel reuse)."""
        if self.num_slots == 0:
            return 0.0
        return len(self.assignment) / self.num_slots


def _neighbor_on(
    tables: NeighborTables, node: int, channel: int
) -> Set[int]:
    """Discovered neighbors of ``node`` sharing ``channel``."""
    return {
        v
        for v, chans in tables.get(node, {}).items()
        if channel in chans
    }


def schedule_links(tables: NeighborTables) -> LinkSchedule:
    """Greedy collision-free schedule for all bidirectional links.

    Each link is assigned its lexicographically smallest common channel
    first; conflicts are resolved by slot coloring. Node-disjoint links
    on different channels are never in conflict.
    """
    if not tables:
        raise ConfigurationError("no neighbor tables supplied")

    # Bidirectional discovered links with their channel (smallest common).
    links: Dict[LinkKey, int] = {}
    for u, neighbors in tables.items():
        for v, chans in neighbors.items():
            if v in tables and u in tables[v]:
                common = chans & tables[v][u]
                if common:
                    links[(u, v)] = min(common)
    if not links:
        raise ConfigurationError(
            "no bidirectional discovered links to schedule"
        )

    def conflicts(a: LinkKey, b: LinkKey) -> bool:
        (ta, ra), (tb, rb) = a, b
        if {ta, ra} & {tb, rb}:
            # Shared endpoint: one radio cannot serve two links in the
            # same slot, whatever the channels (half-duplex, one channel
            # at a time).
            return True
        if links[a] != links[b]:
            return False  # disjoint links on different channels coexist
        channel = links[a]
        # Cross interference: a's transmitter audible at b's receiver
        # (on the shared channel), or vice versa.
        if ta in _neighbor_on(tables, rb, channel):
            return True
        if tb in _neighbor_on(tables, ra, channel):
            return True
        return False

    # Greedy coloring, most-conflicted links first.
    keys = sorted(links)
    degree = {
        k: sum(1 for other in keys if other != k and conflicts(k, other))
        for k in keys
    }
    order = sorted(keys, key=lambda k: (-degree[k], k))
    slot_of: Dict[LinkKey, int] = {}
    for k in order:
        used = {
            slot_of[other]
            for other in slot_of
            if conflicts(k, other)
        }
        slot = 0
        while slot in used:
            slot += 1
        slot_of[k] = slot

    num_slots = 1 + max(slot_of.values())
    return LinkSchedule(
        assignment={k: (slot_of[k], links[k]) for k in keys},
        num_slots=num_slots,
    )
