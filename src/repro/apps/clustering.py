"""Lowest-id clustering over discovered neighborhoods (cf. [5]).

Input: the per-node neighbor tables produced by discovery —
``{owner: {neighbor: common channels}}``. Nothing else: if the tables
are incomplete, the clustering degrades accordingly (which is exactly
what makes this a useful end-to-end check of discovery output).

Rule (Lin & Gerla's distributed heuristic, evaluated centrally here):
a node is a **clusterhead** iff its id is smaller than every id in its
discovered *bidirectional* neighborhood that is not already claimed by
a smaller head; every other node joins the smallest-id head it can
hear. Ties and orphans (nodes whose tables are empty) become singleton
clusters.

Only bidirectional edges are used — ``u`` and ``v`` must each have
discovered the other — since a cluster link needs traffic both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Set, Tuple

from ..exceptions import ConfigurationError

__all__ = ["ClusterAssignment", "NeighborTables", "lowest_id_clusters"]

NeighborTables = Mapping[int, Mapping[int, FrozenSet[int]]]


@dataclass(frozen=True)
class ClusterAssignment:
    """A clustering of the discovered graph.

    Attributes:
        head_of: Clusterhead per node (heads map to themselves).
        members_of: Nodes per clusterhead (heads include themselves).
    """

    head_of: Dict[int, int]
    members_of: Dict[int, FrozenSet[int]]

    @property
    def num_clusters(self) -> int:
        """Number of clusters (= number of heads)."""
        return len(self.members_of)

    @property
    def heads(self) -> FrozenSet[int]:
        """All clusterheads."""
        return frozenset(self.members_of)

    def cluster_of(self, node_id: int) -> FrozenSet[int]:
        """All members of ``node_id``'s cluster."""
        return self.members_of[self.head_of[node_id]]


def _bidirectional_edges(tables: NeighborTables) -> Dict[int, Set[int]]:
    adj: Dict[int, Set[int]] = {nid: set() for nid in tables}
    for u, neighbors in tables.items():
        for v in neighbors:
            if v in tables and u in tables[v]:
                adj[u].add(v)
                adj[v].add(u)
    return adj


def lowest_id_clusters(tables: NeighborTables) -> ClusterAssignment:
    """Cluster the discovered graph by the lowest-id rule.

    Deterministic: iterate node ids ascending; an unassigned node whose
    discovered bidirectional neighbors of smaller id are all assigned to
    *other* heads (i.e. none of them is an available head for it)
    becomes a head; otherwise it joins the smallest-id head among its
    neighbors.
    """
    if not tables:
        raise ConfigurationError("no neighbor tables supplied")
    adj = _bidirectional_edges(tables)

    head_of: Dict[int, int] = {}
    for nid in sorted(adj):
        neighbor_heads = sorted(
            head_of[v]
            for v in adj[nid]
            if v in head_of and head_of[v] == v  # v is itself a head
        )
        if neighbor_heads and neighbor_heads[0] < nid:
            head_of[nid] = neighbor_heads[0]
        else:
            head_of[nid] = nid  # become a head

    members: Dict[int, Set[int]] = {}
    for nid, head in head_of.items():
        members.setdefault(head, set()).add(nid)
    return ClusterAssignment(
        head_of=head_of,
        members_of={h: frozenset(ms) for h, ms in members.items()},
    )
