"""Downstream applications of neighbor discovery (paper §I).

The introduction motivates discovery as the first step "to solve other
important communication problems such as medium access control,
clustering, collision-free scheduling, and topology control". This
subpackage implements two of those consumers, operating **only on
discovery output** (per-node neighbor tables) — never on the ground
truth network — so they demonstrate, and test, that the discovered
tables are actually sufficient:

* :mod:`repro.apps.clustering` — lowest-id clustering (Lin & Gerla [5]
  style) over the discovered one-hop neighborhoods;
* :mod:`repro.apps.link_scheduling` — collision-free link-layer TDMA
  schedules (distance-2 edge coloring, Gandham et al. [7] style) over
  the discovered links and their common channels.
"""

from __future__ import annotations

from .clustering import ClusterAssignment, lowest_id_clusters
from .link_scheduling import LinkSchedule, schedule_links

__all__ = [
    "ClusterAssignment",
    "LinkSchedule",
    "lowest_id_clusters",
    "schedule_links",
]
