"""Deterministic chaos injection for the campaign runner itself.

PR 3's ``FaultPlan`` exercises the *protocols* under spectrum dynamics
and churn; this module does the same for the *execution layer*. A
:class:`ChaosPlan` names exact trial indices at which a worker should
fail — by raising, by hard process death, or by (simulated) timeout —
and on which attempts, so retry, quarantine, backend degradation,
checkpoint/resume and archive atomicity can all be tested under fault
without any real nondeterminism.

Modes:

* ``raise`` — the worker raises :class:`ChaosInjectedFailure` before
  running the trial (a soft failure: the pool survives);
* ``exit`` — the worker process dies with ``os._exit`` (surfaces as
  ``BrokenProcessPool`` in the parent). When the chunk executes
  in-process — serial backend, or after the supervisor degraded the
  pool — the mode degrades to ``raise`` so chaos never kills the
  campaign parent;
* ``timeout`` — consumed by the supervisor at collection time: the
  chunk is treated as having exceeded its wall-clock budget without
  actually waiting for one.

Distributed modes (:data:`DISTRIBUTED_CHAOS_MODES`) target the
file-queue execution layer of :mod:`repro.resilience.distributed`
instead of the chunk payload:

* ``worker-kill`` — the queue worker dies right after claiming the
  chunk's lease and before journaling a result (``os._exit`` when the
  worker runs with ``hard_exit=True``, an abandoned-lease simulation
  otherwise), exercising dead-lease reclamation;
* ``lease-steal`` — the coordinator deletes the chunk's *live* lease
  while its owner is still executing, forcing a second claim and a
  double completion (resolved deterministically by trial index);
* ``stale-heartbeat`` — the coordinator treats the lease owner's
  heartbeat as expired, triggering immediate reclamation of a healthy
  worker's lease.

Plans are plain picklable dataclasses: they ship to workers inside the
chunk payload together with the chunk's attempt number, which is what
makes "fail the first two attempts, then succeed" reproducible across
process boundaries.

The module also hosts the file-tampering helpers
(:func:`truncate_file`, :func:`flip_byte`) that the archive
verification tests use to fabricate torn and bit-rotted archives.
"""

from __future__ import annotations

import multiprocessing
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

from ..exceptions import ConfigurationError

__all__ = [
    "CHAOS_MODES",
    "DISTRIBUTED_CHAOS_MODES",
    "ChaosEvent",
    "ChaosInjectedFailure",
    "ChaosPlan",
    "flip_byte",
    "parse_chaos_spec",
    "truncate_file",
]

#: Modes consumed by the distributed queue layer, not the chunk payload.
DISTRIBUTED_CHAOS_MODES = ("worker-kill", "lease-steal", "stale-heartbeat")

CHAOS_MODES = ("raise", "exit", "timeout") + DISTRIBUTED_CHAOS_MODES


class ChaosInjectedFailure(RuntimeError):
    """The failure a ``raise``-mode (or in-process ``exit``-mode) event throws."""


@dataclass(frozen=True)
class ChaosEvent:
    """Fail the chunk containing ``trial`` on its first ``times`` attempts.

    Attributes:
        trial: Trial index that triggers the event (the whole dispatch
            chunk containing it fails, exactly like a real fault).
        mode: One of :data:`CHAOS_MODES`.
        times: Fire on attempts ``0 .. times-1``; ``-1`` fires on every
            attempt (a poison trial that never recovers).
    """

    trial: int
    mode: str = "raise"
    times: int = 1

    def __post_init__(self) -> None:
        if self.trial < 0:
            raise ConfigurationError(f"trial must be >= 0, got {self.trial}")
        if self.mode not in CHAOS_MODES:
            raise ConfigurationError(
                f"unknown chaos mode {self.mode!r}; choose from {CHAOS_MODES}"
            )
        if self.times < -1 or self.times == 0:
            raise ConfigurationError(
                f"times must be -1 (always) or >= 1, got {self.times}"
            )

    def fires(self, attempt: int) -> bool:
        """Whether this event fires on the given zero-based attempt."""
        return self.times == -1 or attempt < self.times


@dataclass(frozen=True)
class ChaosPlan:
    """A set of deterministic execution-layer faults for one campaign."""

    events: Tuple[ChaosEvent, ...] = ()

    def mode_for(self, trial: int, attempt: int) -> Optional[str]:
        """The mode firing for ``trial`` on ``attempt``, or ``None``."""
        for event in self.events:
            if event.trial == trial and event.fires(attempt):
                return event.mode
        return None

    def strike(self, trial_indices: Sequence[int], attempt: int) -> None:
        """Fail now if any ``raise``/``exit`` event covers this chunk attempt.

        Called by the worker entry point before running a chunk.
        ``timeout`` events are ignored here — they are the supervisor's
        to simulate at collection time.
        """
        for trial in trial_indices:
            mode = self.mode_for(trial, attempt)
            if mode == "exit":
                if multiprocessing.parent_process() is not None:
                    os._exit(42)  # hard worker death -> BrokenProcessPool
                # In-process execution must never kill the campaign
                # parent; the hard crash degrades to a soft failure.
                mode = "raise"
            if mode == "raise":
                raise ChaosInjectedFailure(
                    f"chaos: injected worker failure at trial {trial} "
                    f"(attempt {attempt})"
                )

    def times_out(self, trial_indices: Iterable[int], attempt: int) -> bool:
        """Whether a ``timeout`` event covers this chunk attempt."""
        return self._covers("timeout", trial_indices, attempt)

    # -- distributed-layer queries (no-ops for pool/in-process runs) ----

    def worker_kill(self, trial_indices: Iterable[int], attempt: int) -> bool:
        """Whether a ``worker-kill`` event covers this chunk attempt."""
        return self._covers("worker-kill", trial_indices, attempt)

    def lease_steal(self, trial_indices: Iterable[int], attempt: int) -> bool:
        """Whether a ``lease-steal`` event covers this chunk attempt."""
        return self._covers("lease-steal", trial_indices, attempt)

    def stale_heartbeat(self, trial_indices: Iterable[int], attempt: int) -> bool:
        """Whether a ``stale-heartbeat`` event covers this chunk attempt."""
        return self._covers("stale-heartbeat", trial_indices, attempt)

    def _covers(
        self, mode: str, trial_indices: Iterable[int], attempt: int
    ) -> bool:
        return any(
            self.mode_for(trial, attempt) == mode for trial in trial_indices
        )


_SPEC_RE = re.compile(
    "^(" + "|".join(re.escape(m) for m in CHAOS_MODES) + r")@(\d+)(?:x(-1|\d+))?$"
)


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse the CLI chaos syntax: ``mode@trial[xTIMES]``, comma-separated.

    Examples: ``raise@3`` (fail trial 3's chunk once), ``exit@0x2``
    (kill the worker on trial 0's first two attempts),
    ``timeout@5x-1`` (trial 5's chunk always times out).
    """
    events = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        match = _SPEC_RE.match(part)
        if match is None:
            raise ConfigurationError(
                f"bad chaos event {part!r}; expected mode@trial[xTIMES] with "
                f"mode in {CHAOS_MODES}, e.g. 'raise@3' or 'exit@0x-1'"
            )
        mode, trial, times = match.group(1), int(match.group(2)), match.group(3)
        events.append(
            ChaosEvent(
                trial=trial, mode=mode, times=1 if times is None else int(times)
            )
        )
    if not events:
        raise ConfigurationError(f"chaos spec {spec!r} names no events")
    return ChaosPlan(events=tuple(events))


def truncate_file(path: Union[str, Path], keep_bytes: int) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (torn-write double)."""
    if keep_bytes < 0:
        raise ConfigurationError(f"keep_bytes must be >= 0, got {keep_bytes}")
    data = Path(path).read_bytes()
    Path(path).write_bytes(data[:keep_bytes])


def flip_byte(path: Union[str, Path], index: int) -> None:
    """XOR one byte of ``path`` (bit-rot double for checksum tests)."""
    data = bytearray(Path(path).read_bytes())
    if not 0 <= index < len(data):
        raise ConfigurationError(
            f"byte index {index} out of range for {len(data)}-byte file"
        )
    data[index] ^= 0xFF
    Path(path).write_bytes(bytes(data))
