"""Multi-host campaign sharding: a file-based lease queue for chunks.

The executor ladder of :mod:`repro.resilience.supervisor` is
single-machine; this module adds the rung that is not.
:class:`DistributedChunkExecutor` publishes a campaign's dispatch
chunks as a **task** in a shared :class:`WorkQueue` directory (any
filesystem both hosts can see), where any number of ``m2hew worker``
processes — on this host or others — claim and execute them:

* **claims are atomic lease files**: a worker owns a chunk iff it
  created ``chunk-NNNNN.lease.json`` with ``O_CREAT|O_EXCL`` (the one
  filesystem primitive that is atomic everywhere), fsynced before use;
* **workers heartbeat** by atomically rewriting a per-worker file with
  an incrementing beat counter;
* **liveness is judged by local observation, not clock comparison**:
  the coordinator remembers *its own* monotonic time when it first saw
  each lease/heartbeat content, and declares a lease dead only when
  both the lease and its owner's heartbeat have sat unchanged for a
  full ``lease_ttl`` of local time — no cross-host clock sync needed;
* **dead leases are reclaimed** through the ordinary supervision path:
  reclamation counts against the chunk's :class:`RetryPolicy` budget
  and sleeps the same seeded backoff as any other failure;
* **no workers? no problem**: when no live remote worker exists the
  coordinator executes unclaimed chunks itself, so ``--backend
  distributed`` degrades to (supervised) in-process execution.

Determinism is inherited, not re-proven: a chunk's payload is fully
determined by ``(base_seed, trial indices)`` — workers re-derive
``derive_trial_seed(base_seed, t)`` locally — and the coordinator
records results keyed by trial index through the shared
:class:`~repro.resilience.executor._Supervision` bookkeeping into the
shared :class:`~repro.resilience.checkpoint.TrialJournal`. A lease
stolen mid-execution therefore produces a *double completion* whose
two result sets are byte-identical, and whichever is absorbed, the
archive cannot change: resolution is by trial index, never by
completion order. Worker kills, shard counts and lease-expiry races
may change *when* and *where* a trial ran — never what it computed.

Every sidecar this module writes (task specs, leases, markers,
heartbeats) is read through
:func:`~repro.resilience.checkpoint.load_sidecar`, so a file torn by a
worker dying mid-write reads as absent and is simply rewritten —
crash tolerance matches the journal's own torn-final-line rule.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import re
import shutil
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple, Union

from ..exceptions import ConfigurationError
from ..sim.parallel import _ChunkPayload, _run_chunk
from ..sim.results import DiscoveryResult, result_from_dict
from ..sim.rng import derive_trial_seed
from .atomic import atomic_write_text, sha256_of_text
from .chaos import ChaosEvent, ChaosPlan
from .checkpoint import load_sidecar
from .executor import ChunkExecutor, _ChunkState, _Supervision

__all__ = [
    "DISTRIBUTED_BACKEND",
    "DistributedChunkExecutor",
    "LeasePolicy",
    "QUEUE_SCHEMA_VERSION",
    "QueueWorker",
    "RemoteWorkerFailure",
    "TASK_SUFFIX",
    "WorkQueue",
    "chaos_from_jsonable",
    "chaos_to_jsonable",
    "default_worker_id",
    "run_worker",
    "runner_params_to_jsonable",
]

#: The ``m2hew batch --backend`` name routing to this module. Kept out
#: of :data:`repro.sim.parallel.BACKENDS` deliberately: it is not a
#: chunking plan but an executor choice layered above one.
DISTRIBUTED_BACKEND = "distributed"

QUEUE_SCHEMA_VERSION = 1

TASK_SUFFIX = ".task.json"

# Module-level so tests can monkeypatch one name and steer every
# coordinator's idea of elapsed time.
_monotonic = time.monotonic


class RemoteWorkerFailure(RuntimeError):
    """A chunk failed on (or was abandoned by) a remote queue worker."""


@dataclass(frozen=True)
class LeasePolicy:
    """Cadence knobs for the lease protocol.

    Attributes:
        lease_ttl: Seconds of *locally observed* silence — lease file
            unchanged and its owner's heartbeat unchanged — after which
            a lease is presumed abandoned and reclaimed. Must comfortably
            exceed both ``heartbeat_interval`` and the longest expected
            chunk; a too-small TTL only costs duplicated work (double
            completions are benign), never correctness.
        heartbeat_interval: Target seconds between worker heartbeats.
        poll_interval: Coordinator/worker sleep between queue scans.
    """

    lease_ttl: float = 15.0
    heartbeat_interval: float = 2.0
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        for name in ("lease_ttl", "heartbeat_interval", "poll_interval"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigurationError(f"{name} must be > 0, got {value!r}")
        if self.lease_ttl <= self.heartbeat_interval:
            raise ConfigurationError(
                f"lease_ttl ({self.lease_ttl}) must exceed heartbeat_interval "
                f"({self.heartbeat_interval}); otherwise every healthy worker "
                "looks dead"
            )


def _slug(text: str) -> str:
    """Filesystem-safe token for experiment names and worker ids."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text) or "campaign"


def default_worker_id() -> str:
    """Hostname + pid: unique per live worker process, no randomness."""
    return f"{_slug(socket.gethostname())}-{os.getpid()}"


def runner_params_to_jsonable(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Runner params as they ship inside a task file.

    Fault plans travel in their dict form (``plan_to_dict``); the
    runner on the worker side normalizes dicts back through
    ``as_fault_plan``, so remote and local execution see the same plan.
    Anything else must already be JSON — a param the queue cannot
    represent faithfully would silently change remote results.
    """
    shipped: Dict[str, Any] = {}
    for key, value in params.items():
        if key == "faults":
            from ..faults.serialization import as_fault_plan, plan_to_dict

            plan = as_fault_plan(value)
            if plan is None:
                continue
            shipped[key] = plan_to_dict(plan)
            continue
        try:
            json.dumps(value)
        except TypeError:
            raise ConfigurationError(
                f"runner param {key!r} ({type(value).__name__}) is not "
                "JSON-serializable and cannot ship through a work queue"
            ) from None
        shipped[key] = value
    return shipped


def chaos_to_jsonable(chaos: Optional[ChaosPlan]) -> Optional[List[Dict[str, Any]]]:
    """Chaos events as they ship inside a task file (``None`` when clean)."""
    if chaos is None or not chaos.events:
        return None
    return [
        {"trial": e.trial, "mode": e.mode, "times": e.times} for e in chaos.events
    ]


def chaos_from_jsonable(events: Optional[Any]) -> Optional[ChaosPlan]:
    """Inverse of :func:`chaos_to_jsonable` (tolerant: bad shape → ``None``)."""
    if not isinstance(events, list) or not events:
        return None
    try:
        return ChaosPlan(
            events=tuple(
                ChaosEvent(
                    trial=int(e["trial"]),
                    mode=str(e["mode"]),
                    times=int(e.get("times", 1)),
                )
                for e in events
            )
        )
    except (ConfigurationError, KeyError, TypeError, ValueError):
        return None


class WorkQueue:
    """A shared-directory work queue: tasks, chunk markers, heartbeats.

    Layout under ``root`` (every file JSON, every write atomic except
    the ``O_EXCL`` lease claim, every read torn-write tolerant)::

        queue.json                     schema marker
        tasks/<task>.task.json         immutable task spec
        tasks/<task>/chunk-NNNNN.lease.json   atomic claim (owner id)
        tasks/<task>/chunk-NNNNN.done.json    results, keyed by trial
        tasks/<task>/chunk-NNNNN.fail.json    failure for the coordinator
        tasks/<task>/chunk-NNNNN.retry.json   coordinator-approved attempt
        workers/<worker>.json          heartbeat (incrementing beat)

    Task ids are content-derived (experiment + payload digest), so a
    coordinator that crashed and re-published the same campaign lands
    on the same id and absorbs the done markers workers already wrote.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.workers_dir = self.root / "workers"
        self.tasks_dir.mkdir(parents=True, exist_ok=True)
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        marker_path = self.root / "queue.json"
        marker = load_sidecar(marker_path)
        if marker is None:
            atomic_write_text(
                marker_path,
                json.dumps(
                    {"kind": "queue", "schema_version": QUEUE_SCHEMA_VERSION},
                    sort_keys=True,
                )
                + "\n",
            )
        elif marker.get("schema_version") != QUEUE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"work queue {self.root} has schema_version "
                f"{marker.get('schema_version')!r}; this build speaks "
                f"{QUEUE_SCHEMA_VERSION}"
            )

    # -- tasks ----------------------------------------------------------

    def task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}{TASK_SUFFIX}"

    def state_dir(self, task_id: str) -> Path:
        return self.tasks_dir / task_id

    def task_id_for(self, payload: Mapping[str, Any]) -> str:
        """Content-derived task id (same campaign → same id)."""
        digest = sha256_of_text(json.dumps(payload, sort_keys=True))
        return f"{_slug(str(payload.get('experiment') or 'campaign'))}-{digest[:12]}"

    def publish_task(self, payload: Mapping[str, Any]) -> str:
        """Publish a task, retracting stale tasks of the same experiment.

        Idempotent: re-publishing an identical payload reuses the
        existing task (and whatever done markers it accumulated), which
        is how a restarted coordinator resumes in-flight remote work.
        """
        task_id = self.task_id_for(payload)
        experiment = payload.get("experiment")
        for stale_id in self.list_tasks():
            if stale_id == task_id:
                continue
            stale = self.read_task(stale_id)
            if stale is not None and stale.get("experiment") == experiment:
                self.retract_task(stale_id)
        path = self.task_path(task_id)
        if load_sidecar(path) is None:
            self.state_dir(task_id).mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                path, json.dumps(dict(payload), sort_keys=True) + "\n"
            )
        return task_id

    def retract_task(self, task_id: str) -> None:
        """Withdraw a task: spec first (workers stop seeing it), then state."""
        try:
            self.task_path(task_id).unlink()
        except OSError:
            pass
        shutil.rmtree(self.state_dir(task_id), ignore_errors=True)

    def list_tasks(self) -> List[str]:
        return sorted(
            p.name[: -len(TASK_SUFFIX)]
            for p in self.tasks_dir.glob(f"*{TASK_SUFFIX}")
        )

    def read_task(self, task_id: str) -> Optional[Dict[str, Any]]:
        payload = load_sidecar(self.task_path(task_id))
        if payload is None or payload.get("kind") != "task":
            return None
        if payload.get("schema_version") != QUEUE_SCHEMA_VERSION:
            return None
        return payload

    # -- chunk markers ---------------------------------------------------

    def marker_path(self, task_id: str, chunk: int, kind: str) -> Path:
        return self.state_dir(task_id) / f"chunk-{chunk:05d}.{kind}.json"

    def claim(self, task_id: str, chunk: int, worker_id: str, attempt: int) -> bool:
        """Atomically claim a chunk lease. ``False`` = already claimed/retracted."""
        path = self.marker_path(task_id, chunk, "lease")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except FileNotFoundError:  # state dir gone: the task was retracted
            return False
        payload = {
            "kind": "lease",
            "chunk": chunk,
            "worker": worker_id,
            "attempt": attempt,
        }
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return True

    def release(self, task_id: str, chunk: int) -> None:
        self.clear_marker(task_id, chunk, "lease")

    def clear_marker(self, task_id: str, chunk: int, kind: str) -> None:
        try:
            self.marker_path(task_id, chunk, kind).unlink()
        except OSError:
            pass

    def read_marker(
        self, task_id: str, chunk: int, kind: str
    ) -> Optional[Dict[str, Any]]:
        return load_sidecar(self.marker_path(task_id, chunk, kind))

    def write_marker(
        self, task_id: str, chunk: int, kind: str, payload: Mapping[str, Any]
    ) -> bool:
        """Atomically (over)write a marker; ``False`` = task retracted."""
        if not self.state_dir(task_id).is_dir():
            # atomic_write_text would re-create the directory of a
            # retracted task; refuse instead so retraction sticks.
            return False
        try:
            atomic_write_text(
                self.marker_path(task_id, chunk, kind),
                json.dumps(dict(payload), sort_keys=True) + "\n",
            )
        except OSError:
            return False
        return True

    # -- worker heartbeats ----------------------------------------------

    def heartbeat(self, worker_id: str, payload: Mapping[str, Any]) -> None:
        atomic_write_text(
            self.workers_dir / f"{worker_id}.json",
            json.dumps(dict(payload), sort_keys=True) + "\n",
        )

    def list_workers(self) -> List[str]:
        return sorted(p.stem for p in self.workers_dir.glob("*.json"))

    def read_worker(self, worker_id: str) -> Optional[Dict[str, Any]]:
        return load_sidecar(self.workers_dir / f"{worker_id}.json")


class QueueWorker:
    """Claims and executes one queue chunk at a time.

    ``step()`` is synchronous and single-chunk so tests (and the
    coordinator's pump loops) can interleave workers deterministically;
    :func:`run_worker` wraps it in the long-running CLI loop.

    Args:
        hard_exit: Make ``worker-kill`` chaos events die for real
            (``os._exit``) instead of returning — the behaviour wanted
            in subprocess smoke tests but never inside a test runner.
        on_claimed: Test hook fired after a lease claim, before
            execution; lease-race tests use it to interleave a rival.
    """

    def __init__(
        self,
        queue: WorkQueue,
        worker_id: Optional[str] = None,
        *,
        hard_exit: bool = False,
        on_claimed: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.hard_exit = hard_exit
        self.on_claimed = on_claimed
        self.beats = 0
        self.executed = 0

    def heartbeat(self) -> None:
        """Publish liveness: the beat counter is what observers watch change."""
        self.beats += 1
        self.queue.heartbeat(
            self.worker_id,
            {
                "kind": "heartbeat",
                "worker": self.worker_id,
                "beat": self.beats,
                "executed": self.executed,
            },
        )

    def step(self) -> Optional[str]:
        """Claim and execute at most one chunk; ``None`` = nothing claimable."""
        for task_id in self.queue.list_tasks():
            task = self.queue.read_task(task_id)
            if task is None:
                continue
            chunks = task.get("chunks")
            if not isinstance(chunks, list):
                continue
            for chunk_no in range(len(chunks)):
                if self.queue.read_marker(task_id, chunk_no, "done") is not None:
                    continue
                if self.queue.read_marker(task_id, chunk_no, "fail") is not None:
                    continue  # the coordinator owns failed chunks
                if self.queue.read_marker(task_id, chunk_no, "lease") is not None:
                    continue
                retry = self.queue.read_marker(task_id, chunk_no, "retry")
                attempt = 0
                if retry is not None:
                    try:
                        attempt = int(retry.get("attempt", 0))
                    except (TypeError, ValueError):
                        attempt = 0
                if not self.queue.claim(task_id, chunk_no, self.worker_id, attempt):
                    continue
                return self._execute(task_id, task, chunk_no, attempt)
        return None

    def _execute(
        self, task_id: str, task: Dict[str, Any], chunk_no: int, attempt: int
    ) -> str:
        indices: Tuple[int, ...] = tuple(
            int(t) for t in task["chunks"][chunk_no]
        )
        if self.on_claimed is not None:
            self.on_claimed(task_id, chunk_no)
        chaos = chaos_from_jsonable(task.get("chaos"))
        if chaos is not None and chaos.worker_kill(indices, attempt):
            if self.hard_exit:
                os._exit(43)  # crash with the lease held: reclamation's job
            # In-process doubles abandon the lease instead of dying.
            return f"{task_id}/chunk-{chunk_no}: killed"
        base_seed = task.get("base_seed")
        payload = _ChunkPayload(
            network_json=str(task["network"]),
            protocol=str(task["protocol"]),
            runner_params=dict(task.get("runner_params") or {}),
            trial_indices=indices,
            seeds=tuple(derive_trial_seed(base_seed, t) for t in indices),
            vectorized=False,
            chaos=chaos,
            attempt=attempt,
        )
        try:
            results = _run_chunk(payload)
        except Exception as exc:
            wrote = self.queue.write_marker(
                task_id,
                chunk_no,
                "fail",
                {
                    "kind": "fail",
                    "chunk": chunk_no,
                    "attempt": attempt,
                    "worker": self.worker_id,
                    "error": f"{type(exc).__name__}: {exc}",
                },
            )
            self.queue.release(task_id, chunk_no)
            status = "failed" if wrote else "retracted"
            return f"{task_id}/chunk-{chunk_no}: {status}"
        wrote = self.queue.write_marker(
            task_id,
            chunk_no,
            "done",
            {
                "kind": "done",
                "chunk": chunk_no,
                "attempt": attempt,
                "worker": self.worker_id,
                "trials": list(indices),
                "results": [r.to_dict() for r in results],
            },
        )
        self.queue.release(task_id, chunk_no)
        self.executed += 1
        status = "done" if wrote else "retracted"
        return f"{task_id}/chunk-{chunk_no}: {status}"


@dataclass
class _Observation:
    content: str
    first_seen: float


class DistributedChunkExecutor(ChunkExecutor):
    """The coordinator rung: publish chunks, absorb results, heal leases."""

    def __init__(
        self,
        queue: WorkQueue,
        lease: LeasePolicy,
        *,
        protocol: str,
        network_json: str,
        runner_params: Mapping[str, Any],
        base_seed: Optional[int],
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.queue = queue
        self.lease = lease
        self.protocol = protocol
        self.network_json = network_json
        self.runner_params = runner_params
        self.base_seed = base_seed
        self._clock = clock
        self._seen: Dict[str, _Observation] = {}
        self._stole: Set[Tuple[int, int]] = set()
        self._staled: Set[Tuple[int, int]] = set()
        self._degraded = False
        self._local_id = f"coordinator-{default_worker_id()}"

    def _now(self) -> float:
        return self._clock() if self._clock is not None else float(_monotonic())

    def _observe(self, key: str, content: Optional[str]) -> Optional[float]:
        """Seconds this content has sat unchanged *under our observation*.

        ``None`` = absent; ``0.0`` = first sighting (or just changed).
        All staleness judgements flow through here, so they depend only
        on the coordinator's local monotonic clock — never on comparing
        timestamps written by another host.
        """
        if content is None:
            self._seen.pop(key, None)
            return None
        seen = self._seen.get(key)
        now = self._now()
        if seen is None or seen.content != content:
            self._seen[key] = _Observation(content=content, first_seen=now)
            return 0.0
        return now - seen.first_seen

    def run(self, states: List[_ChunkState], sup: _Supervision) -> None:
        pending = [s for s in states if not s.done]
        if not pending:
            return
        payload: Dict[str, Any] = {
            "kind": "task",
            "schema_version": QUEUE_SCHEMA_VERSION,
            "experiment": sup.outcome.experiment,
            "protocol": self.protocol,
            "network": self.network_json,
            "runner_params": runner_params_to_jsonable(self.runner_params),
            "base_seed": self.base_seed,
            "chunks": [list(s.indices) for s in pending],
            "chaos": chaos_to_jsonable(sup.chaos),
        }
        task_id = self.queue.publish_task(payload)
        for chunk_no, state in enumerate(pending):
            if state.attempt:
                self.queue.write_marker(
                    task_id,
                    chunk_no,
                    "retry",
                    {"kind": "retry", "chunk": chunk_no, "attempt": state.attempt},
                )
        while any(not s.done for s in pending):
            progressed = False
            for chunk_no, state in enumerate(pending):
                if state.done:
                    continue
                progressed = (
                    self._advance(task_id, chunk_no, state, sup) or progressed
                )
            if not progressed:
                sup.sleep(self.lease.poll_interval)
        # Clean completion only: a raised quarantine/budget error above
        # leaves the task in place for post-mortem and resume.
        self.queue.retract_task(task_id)

    # -- one chunk, one scan --------------------------------------------

    def _advance(
        self, task_id: str, chunk_no: int, state: _ChunkState, sup: _Supervision
    ) -> bool:
        done = self.queue.read_marker(task_id, chunk_no, "done")
        if done is not None:
            results_json = done.get("results")
            if (
                isinstance(results_json, list)
                and list(done.get("trials") or []) == list(state.indices)
            ):
                results: List[DiscoveryResult] = [
                    result_from_dict(r) for r in results_json
                ]
                sup.record_success(state, results)
            else:
                # A resultless marker for a still-pending chunk can only
                # be stale leftovers (e.g. re-published campaign whose
                # chunking drifted); drop it and re-execute.
                self.queue.clear_marker(task_id, chunk_no, "done")
            return True
        fail = self.queue.read_marker(task_id, chunk_no, "fail")
        if fail is not None:
            self.queue.clear_marker(task_id, chunk_no, "fail")
            exc = RemoteWorkerFailure(
                str(fail.get("error") or "remote worker failure")
            )
            sup.handle_failure(state, exc, timed_out=False)
            self._settle(task_id, chunk_no, state)
            return True
        lease = self.queue.read_marker(task_id, chunk_no, "lease")
        if lease is None and self.queue.marker_path(
            task_id, chunk_no, "lease"
        ).exists():
            # Torn claim: the claimant died between the O_EXCL create
            # and the payload write. The file blocks every other claim,
            # so treat it as an anonymous lease — TTL reclamation will
            # clear it like any other dead lease.
            lease = {"kind": "lease", "chunk": chunk_no, "worker": "", "torn": True}
        if lease is not None:
            return self._tend_lease(task_id, chunk_no, state, lease, sup)
        return self._maybe_self_execute(task_id, chunk_no, state, sup)

    def _tend_lease(
        self,
        task_id: str,
        chunk_no: int,
        state: _ChunkState,
        lease: Mapping[str, Any],
        sup: _Supervision,
    ) -> bool:
        key = (chunk_no, state.attempt)
        if (
            sup.chaos is not None
            and sup.chaos.lease_steal(state.indices, state.attempt)
            and key not in self._stole
        ):
            self._stole.add(key)
            self.queue.release(task_id, chunk_no)
            sup.event(
                "lease_steal",
                f"chaos: stole the live lease of chunk {chunk_no} from "
                f"{lease.get('worker')!r}; expect a double completion",
                state.indices,
            )
            return True
        lease_age = self._observe(
            f"lease:{task_id}:{chunk_no}", json.dumps(dict(lease), sort_keys=True)
        )
        owner = str(lease.get("worker") or "")
        owner_age = self._worker_age(owner)
        owner_stale = owner_age is None or owner_age >= self.lease.lease_ttl
        forced = (
            sup.chaos is not None
            and sup.chaos.stale_heartbeat(state.indices, state.attempt)
            and key not in self._staled
        )
        expired = (
            lease_age is not None
            and lease_age >= self.lease.lease_ttl
            and owner_stale
        )
        if not (forced or expired):
            return False  # healthy claim: leave the worker to it
        if forced:
            self._staled.add(key)
        self.queue.release(task_id, chunk_no)
        cause = (
            "chaos: heartbeat declared stale"
            if forced
            else f"lease and heartbeat unchanged for {self.lease.lease_ttl}s"
        )
        sup.event(
            "lease_reclaim",
            f"reclaimed chunk {chunk_no} from {owner!r} ({cause})",
            state.indices,
        )
        sup.handle_failure(
            state,
            RemoteWorkerFailure(
                f"worker {owner!r} abandoned its lease on chunk {chunk_no} "
                f"({cause})"
            ),
            timed_out=False,
        )
        self._settle(task_id, chunk_no, state)
        return True

    def _maybe_self_execute(
        self, task_id: str, chunk_no: int, state: _ChunkState, sup: _Supervision
    ) -> bool:
        if self._any_live_worker():
            return False  # an alive worker will claim it
        if not self._degraded:
            self._degraded = True
            sup.event(
                "degrade_local",
                "no live remote worker; coordinator executes unclaimed "
                "chunks in-process",
            )
        if not self.queue.claim(task_id, chunk_no, self._local_id, state.attempt):
            return False  # raced a worker that just arrived — even better
        if sup.chaos is not None and sup.chaos.times_out(
            state.indices, state.attempt
        ):
            self.queue.release(task_id, chunk_no)
            sup.handle_failure(
                state,
                concurrent.futures.TimeoutError("chaos: injected chunk timeout"),
                timed_out=True,
            )
            self._settle(task_id, chunk_no, state)
            return True
        try:
            results = _run_chunk(sup.make_payload(state))
        except Exception as exc:
            self.queue.release(task_id, chunk_no)
            sup.handle_failure(state, exc, timed_out=False)
            self._settle(task_id, chunk_no, state)
            return True
        sup.record_success(state, results)
        self.queue.write_marker(
            task_id,
            chunk_no,
            "done",
            {
                "kind": "done",
                "chunk": chunk_no,
                "attempt": state.attempt,
                "worker": self._local_id,
                "resolved": "local",
            },
        )
        self.queue.release(task_id, chunk_no)
        return True

    def _settle(self, task_id: str, chunk_no: int, state: _ChunkState) -> None:
        """Publish the post-failure verdict so workers act on it."""
        if state.done:
            # Resolved locally (isolation or quarantine): results — if
            # any — already live in the outcome/journal; the marker only
            # stops workers from re-claiming the chunk.
            self.queue.write_marker(
                task_id,
                chunk_no,
                "done",
                {"kind": "done", "chunk": chunk_no, "resolved": "local"},
            )
            self.queue.release(task_id, chunk_no)
        else:
            self.queue.write_marker(
                task_id,
                chunk_no,
                "retry",
                {"kind": "retry", "chunk": chunk_no, "attempt": state.attempt},
            )

    # -- liveness --------------------------------------------------------

    def _worker_age(self, worker_id: str) -> Optional[float]:
        if not worker_id:
            return None
        heartbeat = self.queue.read_worker(worker_id)
        if heartbeat is None:
            return None
        return self._observe(
            f"worker:{worker_id}", json.dumps(heartbeat, sort_keys=True)
        )

    def _any_live_worker(self) -> bool:
        for worker_id in self.queue.list_workers():
            if worker_id == self._local_id:
                continue
            age = self._worker_age(worker_id)
            if age is not None and age < self.lease.lease_ttl:
                return True
        return False


def run_worker(
    queue_dir: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    lease: Optional[LeasePolicy] = None,
    max_chunks: Optional[int] = None,
    idle_exit: Optional[float] = None,
    hard_exit: bool = True,
    sleep: Optional[Callable[[float], None]] = None,
    on_status: Optional[Callable[[str], None]] = None,
) -> int:
    """The ``m2hew worker`` loop: heartbeat, claim, execute, repeat.

    Args:
        queue_dir: The shared queue directory (same as the
            coordinator's ``--queue``).
        worker_id: Stable identity for leases/heartbeats (default
            ``<hostname>-<pid>``).
        lease: Cadence policy; only ``poll_interval`` and
            ``heartbeat_interval`` matter on the worker side.
        max_chunks: Exit after executing this many chunks (smoke tests).
        idle_exit: Exit after this many consecutive idle seconds;
            ``None`` runs until killed.
        hard_exit: Let ``worker-kill`` chaos events call ``os._exit``.
        sleep: Replacement for :func:`time.sleep` (tests).
        on_status: Observer for per-chunk status lines (the CLI prints
            them).

    Returns:
        Number of chunks this worker completed (or failed with a
        recorded marker).
    """
    policy = lease or LeasePolicy()
    queue = WorkQueue(Path(queue_dir))
    worker = QueueWorker(queue, worker_id, hard_exit=hard_exit)
    do_sleep = sleep if sleep is not None else time.sleep
    idle = 0.0
    since_beat = policy.heartbeat_interval  # heartbeat immediately
    while True:
        if since_beat >= policy.heartbeat_interval:
            worker.heartbeat()
            since_beat = 0.0
        status = worker.step()
        if status is None:
            if idle_exit is not None and idle >= idle_exit:
                return worker.executed
            do_sleep(policy.poll_interval)
            idle += policy.poll_interval
            since_beat += policy.poll_interval
        else:
            idle = 0.0
            since_beat = policy.heartbeat_interval  # re-announce after work
            if on_status is not None:
                on_status(status)
            if max_chunks is not None and worker.executed >= max_chunks:
                return worker.executed
