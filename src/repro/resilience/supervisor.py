"""Supervised trial execution: retries, quarantine, degradation, resume.

:func:`run_supervised_trials` is the resilient sibling of
:func:`repro.sim.parallel.run_spec_trials`. It dispatches the same
seeded chunks through the same worker entry point — so a fault-free
supervised campaign is byte-identical to a fail-fast one — but instead
of aborting on the first failure it:

* **retries** a failed chunk with seeded exponential backoff
  (:mod:`repro.resilience.policy`), bounded per chunk and campaign-wide;
* **quarantines** trials that keep failing: the campaign completes, and
  the quarantined indices plus their replay seeds are reported to the
  caller (``run_batch`` records them in the manifest);
* **degrades gracefully**: a chunk that fails under the vectorized
  engine retries through the per-trial loop (byte-identical output),
  and repeated hard worker crashes downgrade the pool to in-process
  execution — every downgrade is logged and surfaced as an event;
* **journals** completed trials to a checkpoint
  (:mod:`repro.resilience.checkpoint`) so a killed campaign resumes
  where it stopped, with archives byte-identical to an uninterrupted
  run.

Determinism: trial ``t`` always runs from ``derive_trial_seed(base_seed,
t)``, results are keyed by trial index, and retrying re-runs the *same*
payload — so neither retries, nor the worker count, nor where a chunk
eventually succeeded can leave a trace in the results. Collection is
strictly in dispatch order (completed-but-uncollected futures of a
broken pool are deliberately discarded rather than racily salvaged), so
the control flow under a deterministic chaos plan is itself
deterministic.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import TrialQuarantinedError
from ..net.network import M2HeWNetwork
from ..net.serialization import network_to_json
from ..sim.parallel import (
    ParallelPlan,
    _ChunkPayload,
    _merge_batch_size,
    _run_chunk,
    _wrap_failure,
    resolve_plan,
)
from ..sim.results import DiscoveryResult, result_from_dict
from ..sim.rng import RngFactory, derive_trial_seed
from .chaos import ChaosPlan
from .checkpoint import TrialJournal
from .policy import RetryPolicy, backoff_delay

__all__ = [
    "QuarantinedTrial",
    "SupervisedTrials",
    "SupervisorEvent",
    "run_supervised_trials",
]

_logger = logging.getLogger("repro.resilience")

#: Event kinds that ``run_batch`` archives in the manifest. Retries and
#: pool rebuilds are operational noise (logged only): archiving them
#: would make a recovered campaign's bytes differ from a clean one's.
ARCHIVED_EVENT_KINDS = frozenset({"downgrade_pool", "downgrade_vectorized"})
__all__.append("ARCHIVED_EVENT_KINDS")


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision decision (retry, rebuild, downgrade, quarantine)."""

    kind: str
    experiment: Optional[str]
    detail: str
    trial_indices: Tuple[int, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """JSON form for manifests and logs."""
        payload: Dict[str, Any] = {"kind": self.kind, "detail": self.detail}
        if self.experiment is not None:
            payload["experiment"] = self.experiment
        if self.trial_indices:
            payload["trials"] = list(self.trial_indices)
        return payload


@dataclass(frozen=True)
class QuarantinedTrial:
    """A trial that exhausted its retry budget and was set aside.

    ``base_seed`` + ``trial`` are the replay coordinates: the failing
    seed is ``derive_trial_seed(base_seed, trial)``.
    """

    experiment: Optional[str]
    trial: int
    base_seed: Optional[int]
    error: str

    def as_dict(self) -> Dict[str, Any]:
        """JSON form recorded in the campaign manifest."""
        return {
            "experiment": self.experiment,
            "trial": self.trial,
            "base_seed": self.base_seed,
            "error": self.error,
        }


@dataclass
class SupervisedTrials:
    """Outcome of one experiment's supervised trials."""

    experiment: Optional[str]
    trials: int
    base_seed: Optional[int]
    completed: Dict[int, DiscoveryResult] = field(default_factory=dict)
    quarantined: List[QuarantinedTrial] = field(default_factory=list)
    events: List[SupervisorEvent] = field(default_factory=list)
    #: Trials restored from a checkpoint journal rather than executed.
    restored: int = 0

    @property
    def complete(self) -> bool:
        """Whether every trial produced a result (nothing quarantined)."""
        return len(self.completed) == self.trials

    def results_in_order(self) -> List[Tuple[int, DiscoveryResult]]:
        """``(trial_index, result)`` pairs sorted by trial index."""
        return sorted(self.completed.items())


@dataclass
class _ChunkState:
    indices: Tuple[int, ...]
    attempt: int = 0
    vectorized: bool = False
    done: bool = False


class _Supervision:
    """Mutable campaign state shared by the pooled and in-process loops."""

    def __init__(
        self,
        outcome: SupervisedTrials,
        policy: RetryPolicy,
        journal: Optional[TrialJournal],
        chaos: Optional[ChaosPlan],
        sleep: Callable[[float], None],
        make_payload: Callable[[_ChunkState], _ChunkPayload],
        isolate_payload: Callable[[int], _ChunkPayload],
        on_progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.outcome = outcome
        self.policy = policy
        self.journal = journal
        self.chaos = chaos
        self.sleep = sleep
        self.make_payload = make_payload
        self.isolate_payload = isolate_payload
        self.on_progress = on_progress
        self.total_retries = 0
        self.pool_breakages = 0
        self.jitter_rng = RngFactory(outcome.base_seed).stream(
            f"resilience/backoff/{outcome.experiment or ''}"
        )

    # -- bookkeeping ----------------------------------------------------

    def event(self, kind: str, detail: str, indices: Tuple[int, ...] = ()) -> None:
        evt = SupervisorEvent(
            kind=kind,
            experiment=self.outcome.experiment,
            detail=detail,
            trial_indices=indices,
        )
        self.outcome.events.append(evt)
        _logger.warning("[%s] %s: %s", self.outcome.experiment or "-", kind, detail)

    def record_success(
        self, state: _ChunkState, results: Sequence[DiscoveryResult]
    ) -> None:
        for trial, result in zip(state.indices, results):
            self.outcome.completed[trial] = result
            if self.journal is not None:
                self.journal.record(trial, result.to_dict())
        state.done = True
        self.notify_progress()

    def notify_progress(self) -> None:
        """Report ``(completed, trials)`` to the observer, if any.

        Fires only after the journal already holds the trials being
        reported, so an observer that checkpoints or streams on every
        call never sees state the journal has not committed.
        """
        if self.on_progress is not None:
            self.on_progress(len(self.outcome.completed), self.outcome.trials)

    # -- failure handling -----------------------------------------------

    def handle_failure(
        self, state: _ChunkState, exc: BaseException, *, timed_out: bool
    ) -> None:
        """Retry, isolate or quarantine a failed chunk attempt.

        Sets ``state.done`` when the chunk will not be re-dispatched
        (its trials were recovered in isolation or quarantined); leaves
        it pending — with ``attempt`` advanced and the backoff already
        slept — when the caller should resubmit it.
        """
        if state.vectorized:
            # The batched engine produced the failure (or was at least
            # in the loop); the per-trial path is byte-identical, so
            # retrying through it removes one suspect for free.
            state.vectorized = False
            self.event(
                "downgrade_vectorized",
                "retrying chunk through the per-trial loop",
                state.indices,
            )
        if state.attempt >= self.policy.max_retries:
            if timed_out:
                # An in-process re-run of a hanging trial cannot be
                # bounded; quarantine the chunk's trials outright.
                self.quarantine_chunk(state, exc, reason="timed out")
            else:
                self.isolate_chunk(state, exc)
            state.done = True
            return
        self.total_retries += 1
        if self.total_retries > self.policy.max_total_retries:
            raise _wrap_failure(
                exc,
                kind="exhausted the campaign retry budget "
                f"({self.policy.max_total_retries} retries)",
                experiment=self.outcome.experiment,
                indices=state.indices,
                base_seed=self.outcome.base_seed,
            )
        delay = backoff_delay(self.policy, state.attempt, self.jitter_rng)
        state.attempt += 1
        self.event(
            "retry",
            f"attempt {state.attempt} after "
            f"{type(exc).__name__} (backoff {delay:.3f}s)",
            state.indices,
        )
        self.sleep(delay)

    def isolate_chunk(self, state: _ChunkState, cause: BaseException) -> None:
        """Re-run an exhausted chunk trial-by-trial, quarantining failures.

        A chunk groups several trials; only the poisonous ones deserve
        quarantine. Isolation runs in-process so a crashing worker
        cannot take healthy trials down with it.
        """
        for trial in state.indices:
            payload = self.isolate_payload(trial)
            try:
                results = _run_chunk(payload)
            except Exception as exc:
                self.quarantine_trial(trial, exc)
            else:
                self.outcome.completed[trial] = results[0]
                if self.journal is not None:
                    self.journal.record(trial, results[0].to_dict())
                self.notify_progress()

    def quarantine_chunk(
        self, state: _ChunkState, exc: BaseException, *, reason: str
    ) -> None:
        for trial in state.indices:
            if trial not in self.outcome.completed:
                self.quarantine_trial(trial, exc, reason=reason)

    def quarantine_trial(
        self, trial: int, exc: BaseException, *, reason: Optional[str] = None
    ) -> None:
        detail = reason or f"{type(exc).__name__}: {exc}"
        if not self.policy.quarantine:
            err = TrialQuarantinedError(
                f"experiment {self.outcome.experiment or '<unnamed>'!r}: trial "
                f"{trial} exhausted {self.policy.max_retries} retries "
                f"({detail}); replay with derive_trial_seed("
                f"{self.outcome.base_seed!r}, {trial})",
                experiment=self.outcome.experiment,
                trial_indices=(trial,),
                base_seed=self.outcome.base_seed,
            )
            err.__cause__ = exc
            raise err
        self.outcome.quarantined.append(
            QuarantinedTrial(
                experiment=self.outcome.experiment,
                trial=trial,
                base_seed=self.outcome.base_seed,
                error=detail,
            )
        )
        self.event("quarantine", detail, (trial,))


def run_supervised_trials(
    network: M2HeWNetwork,
    protocol: str,
    *,
    trials: int,
    base_seed: Optional[int] = 0,
    runner_params: Optional[Mapping[str, Any]] = None,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    experiment: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[TrialJournal] = None,
    chaos: Optional[ChaosPlan] = None,
    sleep: Optional[Callable[[float], None]] = None,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> SupervisedTrials:
    """Run ``trials`` seeded trials under supervision.

    Accepts every execution option of
    :func:`~repro.sim.parallel.run_spec_trials` plus:

    Args:
        policy: Retry/quarantine/degradation policy (default
            :class:`~repro.resilience.policy.RetryPolicy`).
        journal: Open checkpoint journal; its restored trials are
            skipped and every fresh trial is appended on completion.
        chaos: Deterministic execution-layer fault plan (tests, drills).
        sleep: Replacement for :func:`time.sleep` (tests).
        on_progress: Optional observer called with ``(completed,
            trials)`` — once for the journal-restored trials (if any),
            then after every chunk recorded and every trial recovered
            in isolation. Never called before the journal holds the
            reported trials; an exception it raises aborts the campaign
            (cooperative cancellation).

    Raises:
        TrialQuarantinedError: A trial exhausted its retries and the
            policy has quarantine disabled.
        TrialExecutionError: The campaign-wide retry budget ran out.
    """
    policy = policy or RetryPolicy()
    chunk_size = _merge_batch_size(backend, chunk_size, batch_size)
    plan = resolve_plan(
        trials, max_workers=max_workers, backend=backend, chunk_size=chunk_size
    )
    params: Dict[str, Any] = dict(runner_params or {})
    seeds = [derive_trial_seed(base_seed, t) for t in range(trials)]

    outcome = SupervisedTrials(
        experiment=experiment, trials=trials, base_seed=base_seed
    )
    if journal is not None and journal.restored:
        for trial, payload in sorted(journal.restored.items()):
            if 0 <= trial < trials:
                outcome.completed[trial] = result_from_dict(payload)
        outcome.restored = len(outcome.completed)
    if outcome.restored and on_progress is not None:
        on_progress(len(outcome.completed), trials)

    remaining = [t for t in range(trials) if t not in outcome.completed]
    if not remaining:
        return outcome
    if outcome.restored:
        _logger.info(
            "[%s] resume: %d trial(s) restored from checkpoint, %d to run",
            experiment or "-",
            outcome.restored,
            len(remaining),
        )

    network_json = network_to_json(network)

    def make_payload(state: _ChunkState) -> _ChunkPayload:
        return _ChunkPayload(
            network_json=network_json,
            protocol=protocol,
            runner_params=params,
            trial_indices=state.indices,
            seeds=tuple(seeds[i] for i in state.indices),
            vectorized=state.vectorized,
            chaos=chaos,
            attempt=state.attempt,
        )

    def isolate_payload(trial: int) -> _ChunkPayload:
        return _ChunkPayload(
            network_json=network_json,
            protocol=protocol,
            runner_params=params,
            trial_indices=(trial,),
            seeds=(seeds[trial],),
            vectorized=False,
            chaos=chaos,
            attempt=policy.max_retries + 1,
        )

    supervision = _Supervision(
        outcome=outcome,
        policy=policy,
        journal=journal,
        chaos=chaos,
        sleep=sleep if sleep is not None else time.sleep,
        make_payload=make_payload,
        isolate_payload=isolate_payload,
        on_progress=on_progress,
    )
    states = [
        _ChunkState(indices=chunk, vectorized=plan.vectorized)
        for chunk in _contiguous_chunks(remaining, plan.chunk_size)
    ]
    if plan.backend == "process":
        _run_pooled(states, plan, trial_timeout, supervision)
    _run_in_process(states, supervision)
    return outcome


def _contiguous_chunks(
    indices: Sequence[int], chunk_size: int
) -> List[Tuple[int, ...]]:
    """Group (possibly non-contiguous) remaining trials into dispatch chunks."""
    return [
        tuple(indices[lo : lo + chunk_size])
        for lo in range(0, len(indices), chunk_size)
    ]


def _run_pooled(
    states: List[_ChunkState],
    plan: ParallelPlan,
    trial_timeout: Optional[float],
    sup: _Supervision,
) -> None:
    """Pool dispatch with per-chunk retry and crash-driven degradation.

    Rounds: submit every unfinished chunk, collect strictly in dispatch
    order, retry soft failures on the live pool; a broken pool or a
    timeout ends the round (the executor is dropped) and the next round
    resubmits whatever is left. After ``policy.pool_downgrade_after``
    breakages the remaining chunks fall through to the in-process loop.
    """
    context = multiprocessing.get_context(plan.start_method)
    while any(not s.done for s in states):
        open_states = [s for s in states if not s.done]
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(plan.max_workers, len(open_states)),
            mp_context=context,
        )
        try:
            pending: List[Tuple[_ChunkState, Any]] = [
                (state, executor.submit(_run_chunk, sup.make_payload(state)))
                for state in open_states
            ]
            index = 0
            while index < len(pending):
                state, future = pending[index]
                index += 1
                if state.done:  # finished by a retry earlier this round
                    continue
                if sup.chaos is not None and sup.chaos.times_out(
                    state.indices, state.attempt
                ):
                    future.cancel()
                    sup.handle_failure(
                        state,
                        concurrent.futures.TimeoutError(
                            "chaos: injected chunk timeout"
                        ),
                        timed_out=True,
                    )
                    break  # timeout semantics: the pool is suspect
                budget = (
                    None
                    if trial_timeout is None
                    else trial_timeout * len(state.indices)
                )
                try:
                    results = future.result(timeout=budget)
                except BrokenProcessPool as exc:
                    sup.pool_breakages += 1
                    if sup.pool_breakages >= sup.policy.pool_downgrade_after:
                        sup.event(
                            "downgrade_pool",
                            f"{sup.pool_breakages} worker-pool breakages; "
                            "running remaining chunks in-process",
                        )
                        return  # leftovers handled by _run_in_process
                    sup.event(
                        "pool_rebuild",
                        f"worker pool broke ({exc}); rebuilding and "
                        "resubmitting unfinished chunks",
                        state.indices,
                    )
                    break
                except concurrent.futures.TimeoutError as exc:
                    # A stuck worker cannot be interrupted cooperatively;
                    # drop the pool so the straggler cannot poison later
                    # chunks, then re-dispatch on a fresh one.
                    sup.handle_failure(state, exc, timed_out=True)
                    break
                except Exception as exc:
                    sup.handle_failure(state, exc, timed_out=False)
                    if not state.done:
                        pending.append(
                            (
                                state,
                                executor.submit(
                                    _run_chunk, sup.make_payload(state)
                                ),
                            )
                        )
                    continue
                sup.record_success(state, results)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


def _run_in_process(states: List[_ChunkState], sup: _Supervision) -> None:
    """Serial chunk loop with the same retry/quarantine semantics."""
    for state in states:
        while not state.done:
            if sup.chaos is not None and sup.chaos.times_out(
                state.indices, state.attempt
            ):
                sup.handle_failure(
                    state,
                    concurrent.futures.TimeoutError(
                        "chaos: injected chunk timeout"
                    ),
                    timed_out=True,
                )
                continue
            try:
                results = _run_chunk(sup.make_payload(state))
            except Exception as exc:
                sup.handle_failure(state, exc, timed_out=False)
                continue
            sup.record_success(state, results)
