"""Supervised trial execution: retries, quarantine, degradation, resume.

:func:`run_supervised_trials` is the resilient sibling of
:func:`repro.sim.parallel.run_spec_trials`. It dispatches the same
seeded chunks through the same worker entry point — so a fault-free
supervised campaign is byte-identical to a fail-fast one — but instead
of aborting on the first failure it:

* **retries** a failed chunk with seeded exponential backoff
  (:mod:`repro.resilience.policy`), bounded per chunk and campaign-wide;
* **quarantines** trials that keep failing: the campaign completes, and
  the quarantined indices plus their replay seeds are reported to the
  caller (``run_batch`` records them in the manifest);
* **degrades gracefully**: a chunk that fails under the vectorized
  engine retries through the per-trial loop (byte-identical output),
  and repeated hard worker crashes downgrade the pool to in-process
  execution — every downgrade is logged and surfaced as an event;
* **journals** completed trials to a checkpoint
  (:mod:`repro.resilience.checkpoint`) so a killed campaign resumes
  where it stopped, with archives byte-identical to an uninterrupted
  run.

Chunk execution itself lives behind the
:class:`~repro.resilience.executor.ChunkExecutor` interface
(:mod:`repro.resilience.executor`): a process pool, the in-process
loop, or — with ``queue_dir``/``backend="distributed"`` — the
multi-host file-queue coordinator of
:mod:`repro.resilience.distributed`. Executors are stacked as a
degradation ladder; whatever chunks one leaves unfinished fall through
to the next, ending at the in-process loop which always finishes.

Determinism: trial ``t`` always runs from ``derive_trial_seed(base_seed,
t)``, results are keyed by trial index, and retrying re-runs the *same*
payload — so neither retries, nor the worker count, nor where a chunk
eventually succeeded can leave a trace in the results. Collection is
strictly in dispatch order (completed-but-uncollected futures of a
broken pool are deliberately discarded rather than racily salvaged), so
the control flow under a deterministic chaos plan is itself
deterministic.
"""

from __future__ import annotations

import logging
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..net.network import M2HeWNetwork
from ..net.serialization import network_to_json
from ..sim.parallel import (
    _ChunkPayload,
    _merge_batch_size,
    default_chunk_size,
    resolve_plan,
)
from ..sim.results import result_from_dict
from ..sim.rng import RngFactory, derive_trial_seed
from .chaos import ChaosPlan
from .checkpoint import TrialJournal
from .executor import (
    ChunkExecutor,
    InProcessChunkExecutor,
    PooledChunkExecutor,
    QuarantinedTrial,
    SupervisedTrials,
    SupervisorEvent,
    _ChunkState,
    _Supervision,
)
from .policy import RetryPolicy

__all__ = [
    "QuarantinedTrial",
    "SupervisedTrials",
    "SupervisorEvent",
    "run_supervised_trials",
]

_logger = logging.getLogger("repro.resilience")

#: Event kinds that ``run_batch`` archives in the manifest. Retries and
#: pool rebuilds are operational noise (logged only): archiving them
#: would make a recovered campaign's bytes differ from a clean one's.
#: Distributed events (lease reclaims, worker deaths, local degradation)
#: are likewise operational: a kill schedule must not change archives.
ARCHIVED_EVENT_KINDS = frozenset({"downgrade_pool", "downgrade_vectorized"})
__all__.append("ARCHIVED_EVENT_KINDS")


def run_supervised_trials(
    network: M2HeWNetwork,
    protocol: str,
    *,
    trials: int,
    base_seed: Optional[int] = 0,
    runner_params: Optional[Mapping[str, Any]] = None,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    experiment: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[TrialJournal] = None,
    chaos: Optional[ChaosPlan] = None,
    sleep: Optional[Callable[[float], None]] = None,
    on_progress: Optional[Callable[[int, int], None]] = None,
    queue_dir: Optional[Path] = None,
    lease: Optional[Any] = None,
) -> SupervisedTrials:
    """Run ``trials`` seeded trials under supervision.

    Accepts every execution option of
    :func:`~repro.sim.parallel.run_spec_trials` plus:

    Args:
        policy: Retry/quarantine/degradation policy (default
            :class:`~repro.resilience.policy.RetryPolicy`).
        journal: Open checkpoint journal; its restored trials are
            skipped and every fresh trial is appended on completion.
        chaos: Deterministic execution-layer fault plan (tests, drills).
        sleep: Replacement for :func:`time.sleep` (tests).
        on_progress: Optional observer called with ``(completed,
            trials)`` — once for the journal-restored trials (if any),
            then after every chunk recorded and every trial recovered
            in isolation. Never called before the journal holds the
            reported trials; an exception it raises aborts the campaign
            (cooperative cancellation).
        queue_dir: Shared work-queue directory. When set (or when
            ``backend="distributed"``), chunks are published to the
            queue and claimed by ``m2hew worker`` processes on any
            host; this process coordinates (absorbs results, reclaims
            dead leases) and degrades to executing chunks itself when
            no live remote worker exists.
        lease: :class:`~repro.resilience.distributed.LeasePolicy`
            overriding lease TTL / heartbeat / poll cadence.

    Raises:
        ConfigurationError: ``backend="distributed"`` without a
            ``queue_dir``.
        TrialQuarantinedError: A trial exhausted its retries and the
            policy has quarantine disabled.
        TrialExecutionError: The campaign-wide retry budget ran out.
    """
    # Imported lazily: the distributed module is only needed when a
    # queue is in play, and it reuses this module's public dataclasses.
    from .distributed import (
        DISTRIBUTED_BACKEND,
        DistributedChunkExecutor,
        LeasePolicy,
        WorkQueue,
    )

    distributed = queue_dir is not None or backend == DISTRIBUTED_BACKEND
    if distributed and queue_dir is None:
        from ..exceptions import ConfigurationError

        raise ConfigurationError(
            "backend 'distributed' needs a shared queue directory "
            "(queue_dir= / --queue)"
        )
    plan_backend = "serial" if distributed else backend
    policy = policy or RetryPolicy()
    chunk_size = _merge_batch_size(plan_backend, chunk_size, batch_size)
    if distributed and chunk_size is None:
        # Serial plans default to one chunk per campaign; a shared
        # queue wants enough chunks for workers to steal.
        chunk_size = default_chunk_size(trials, 4)
    plan = resolve_plan(
        trials, max_workers=max_workers, backend=plan_backend, chunk_size=chunk_size
    )
    params: Dict[str, Any] = dict(runner_params or {})
    seeds = [derive_trial_seed(base_seed, t) for t in range(trials)]

    outcome = SupervisedTrials(
        experiment=experiment, trials=trials, base_seed=base_seed
    )
    if journal is not None and journal.restored:
        for trial, payload in sorted(journal.restored.items()):
            if 0 <= trial < trials:
                outcome.completed[trial] = result_from_dict(payload)
        outcome.restored = len(outcome.completed)
    if outcome.restored and on_progress is not None:
        on_progress(len(outcome.completed), trials)

    remaining = [t for t in range(trials) if t not in outcome.completed]
    if not remaining:
        return outcome
    if outcome.restored:
        _logger.info(
            "[%s] resume: %d trial(s) restored from checkpoint, %d to run",
            experiment or "-",
            outcome.restored,
            len(remaining),
        )

    network_json = network_to_json(network)

    def make_payload(state: _ChunkState) -> _ChunkPayload:
        return _ChunkPayload(
            network_json=network_json,
            protocol=protocol,
            runner_params=params,
            trial_indices=state.indices,
            seeds=tuple(seeds[i] for i in state.indices),
            vectorized=state.vectorized,
            chaos=chaos,
            attempt=state.attempt,
        )

    def isolate_payload(trial: int) -> _ChunkPayload:
        return _ChunkPayload(
            network_json=network_json,
            protocol=protocol,
            runner_params=params,
            trial_indices=(trial,),
            seeds=(seeds[trial],),
            vectorized=False,
            chaos=chaos,
            attempt=policy.max_retries + 1,
        )

    supervision = _Supervision(
        outcome=outcome,
        policy=policy,
        journal=journal,
        chaos=chaos,
        sleep=sleep if sleep is not None else time.sleep,
        make_payload=make_payload,
        isolate_payload=isolate_payload,
        jitter_rng=RngFactory(base_seed).stream(
            f"resilience/backoff/{experiment or ''}"
        ),
        on_progress=on_progress,
    )
    states = [
        _ChunkState(indices=chunk, vectorized=plan.vectorized)
        for chunk in _contiguous_chunks(remaining, plan.chunk_size)
    ]
    ladder: List[ChunkExecutor] = []
    if distributed:
        assert queue_dir is not None
        ladder.append(
            DistributedChunkExecutor(
                queue=WorkQueue(Path(queue_dir)),
                lease=lease if isinstance(lease, LeasePolicy) else LeasePolicy(),
                protocol=protocol,
                network_json=network_json,
                runner_params=params,
                base_seed=base_seed,
            )
        )
    elif plan.backend == "process":
        ladder.append(PooledChunkExecutor(plan, trial_timeout))
    ladder.append(InProcessChunkExecutor())
    for rung in ladder:
        if any(not s.done for s in states):
            rung.run(states, supervision)
    return outcome


def _contiguous_chunks(
    indices: Sequence[int], chunk_size: int
) -> List[Tuple[int, ...]]:
    """Group (possibly non-contiguous) remaining trials into dispatch chunks."""
    return [
        tuple(indices[lo : lo + chunk_size])
        for lo in range(0, len(indices), chunk_size)
    ]
