"""Crash-safe file writes and content hashing for experiment archives.

A campaign archive is only as trustworthy as its weakest write: a
``SIGKILL`` in the middle of a plain ``write_text`` leaves a truncated
JSON file that parses as corruption at best and as silently wrong data
at worst. Every archive, manifest and benchmark record in this repo
therefore goes through :func:`atomic_write_text` — write to a temporary
file in the destination directory, flush, ``fsync``, then atomically
``os.replace`` into place — so readers only ever observe the old bytes
or the complete new bytes, never a torn write.

The companion SHA-256 helpers produce the content hashes recorded in
``manifest.json`` and checked by ``m2hew verify-archive``.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text", "sha256_of_bytes", "sha256_of_file", "sha256_of_text"]

_PathLike = Union[str, Path]


def atomic_write_text(path: _PathLike, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX guarantees
    to be atomic. The file descriptor is fsynced before the rename and
    the directory entry afterwards (best effort — some platforms do not
    support fsyncing directories), so the new bytes survive a crash
    immediately after the call returns.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # The write never happened as far as readers are concerned;
        # remove the orphan tmp file and let the original error surface.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(target.parent)


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry of a just-renamed file (best effort)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(dir_fd)


def sha256_of_bytes(data: bytes) -> str:
    """Hex SHA-256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_of_text(text: str, encoding: str = "utf-8") -> str:
    """Hex SHA-256 of ``text`` encoded as written by :func:`atomic_write_text`."""
    return sha256_of_bytes(text.encode(encoding))


def sha256_of_file(path: _PathLike) -> str:
    """Hex SHA-256 of a file's bytes (streamed, so large archives are fine)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()
