"""Self-verification of campaign archives.

:func:`repro.sim.batch.run_batch` writes format-2 archives: every
per-experiment payload carries a ``schema_version`` and the manifest
records a SHA-256 content hash per file. :func:`verify_archive` replays
those commitments against the bytes on disk and reports every violation
it finds:

* a missing or unparseable ``manifest.json`` (truncation shows up here
  first — a torn JSON file no longer parses);
* a manifest or payload ``schema_version`` this code does not know;
* experiment files that are missing, fail their recorded checksum
  (bit rot, manual edits), or no longer parse;
* orphan ``*.json`` files the manifest never mentions (a stale or
  foreign archive mixed into the directory).

Checkpoint journals (``*.journal.jsonl``) are exempt — a checkpoint
directory may double as the output directory, and journals carry their
own integrity story (:mod:`repro.resilience.checkpoint`).

The checker never raises on a corrupt archive — it reports, so one bad
file cannot hide the others; callers wanting an exception use
:meth:`VerificationReport.raise_if_corrupt`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from ..exceptions import ArchiveCorruptionError
from .atomic import sha256_of_file
from .checkpoint import JOURNAL_SUFFIX

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "VerificationIssue",
    "VerificationReport",
    "verify_archive",
]

#: Archive format written by :func:`repro.sim.batch.run_batch` and
#: understood by :func:`verify_archive`. Version 2 added per-payload
#: ``schema_version`` stamps and per-file SHA-256 hashes to the
#: manifest; version-1 archives (no ``schema_version`` key) predate
#: self-verification and are reported as unverifiable.
ARCHIVE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class VerificationIssue:
    """One verification failure, tied to the file that exhibits it."""

    kind: str  # missing | truncated | checksum_mismatch | orphan | schema
    file: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.file}: {self.detail}"

    def as_dict(self) -> Dict[str, str]:
        """JSON form for machine consumers (``m2hew verify-archive --json``)."""
        return {"kind": self.kind, "file": self.file, "detail": self.detail}


@dataclass
class VerificationReport:
    """Everything :func:`verify_archive` found in one archive directory."""

    directory: Path
    issues: List[VerificationIssue] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the archive passed every check."""
        return not self.issues

    def raise_if_corrupt(self) -> None:
        """Raise :class:`ArchiveCorruptionError` unless the archive is clean."""
        if self.issues:
            listing = "; ".join(str(issue) for issue in self.issues)
            raise ArchiveCorruptionError(
                f"archive {self.directory} failed verification "
                f"({len(self.issues)} issue(s)): {listing}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the full report.

        The shape is a stable contract consumed by ``m2hew
        verify-archive --json``, the campaign service's result endpoint
        and CI: ``{"directory", "ok", "files_checked", "issues": [
        {"kind", "file", "detail"}, ...]}``.
        """
        return {
            "directory": str(self.directory),
            "ok": self.ok,
            "files_checked": self.files_checked,
            "issues": [issue.as_dict() for issue in self.issues],
        }

    def to_json(self) -> str:
        """:meth:`as_dict` rendered as deterministic (sorted-key) JSON."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def verify_archive(directory: Union[str, Path]) -> VerificationReport:
    """Check a ``run_batch`` archive directory against its manifest.

    Returns a report rather than raising, so every problem in the
    directory is surfaced in one pass.
    """
    out = Path(directory)
    report = VerificationReport(directory=out)
    if not out.is_dir():
        report.issues.append(
            VerificationIssue(
                kind="missing", file=str(out), detail="not a directory"
            )
        )
        return report

    manifest = _load_manifest(out, report)
    referenced = {"manifest.json"}
    if manifest is not None:
        for entry in manifest.get("experiments", []):
            name = entry.get("file", "")
            referenced.add(name)
            _verify_experiment_file(out, entry, report)

    for path in sorted(out.glob("*.json")):
        if path.name in referenced or path.name.endswith(JOURNAL_SUFFIX):
            continue
        report.issues.append(
            VerificationIssue(
                kind="orphan",
                file=path.name,
                detail="file is not referenced by manifest.json",
            )
        )
    return report


def _load_manifest(
    out: Path, report: VerificationReport
) -> "Dict[str, Any] | None":
    path = out / "manifest.json"
    if not path.is_file():
        report.issues.append(
            VerificationIssue(
                kind="missing", file="manifest.json", detail="file not found"
            )
        )
        return None
    report.files_checked += 1
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        report.issues.append(
            VerificationIssue(
                kind="truncated",
                file="manifest.json",
                detail=f"does not parse as JSON ({exc})",
            )
        )
        return None
    version = manifest.get("schema_version")
    if version != ARCHIVE_SCHEMA_VERSION:
        report.issues.append(
            VerificationIssue(
                kind="schema",
                file="manifest.json",
                detail=(
                    f"schema_version {version!r} is not the supported "
                    f"{ARCHIVE_SCHEMA_VERSION} (pre-verification archive?)"
                ),
            )
        )
        # The file list may still be usable; keep checking with it.
    return manifest if isinstance(manifest.get("experiments"), list) else manifest


def _verify_experiment_file(
    out: Path, entry: Dict[str, Any], report: VerificationReport
) -> None:
    name = entry.get("file")
    if not isinstance(name, str) or not name:
        report.issues.append(
            VerificationIssue(
                kind="schema",
                file="manifest.json",
                detail=f"experiment entry without a file name: {entry!r}",
            )
        )
        return
    path = out / name
    if not path.is_file():
        report.issues.append(
            VerificationIssue(
                kind="missing",
                file=name,
                detail="listed in manifest.json but absent",
            )
        )
        return
    report.files_checked += 1

    expected = entry.get("sha256")
    if not isinstance(expected, str):
        report.issues.append(
            VerificationIssue(
                kind="schema",
                file=name,
                detail="manifest entry carries no sha256 for this file",
            )
        )
    else:
        actual = sha256_of_file(path)
        if actual != expected:
            report.issues.append(
                VerificationIssue(
                    kind="checksum_mismatch",
                    file=name,
                    detail=f"sha256 {actual} != manifest {expected}",
                )
            )

    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        report.issues.append(
            VerificationIssue(
                kind="truncated",
                file=name,
                detail=f"does not parse as JSON ({exc})",
            )
        )
        return
    version = payload.get("schema_version") if isinstance(payload, dict) else None
    if version != ARCHIVE_SCHEMA_VERSION:
        report.issues.append(
            VerificationIssue(
                kind="schema",
                file=name,
                detail=(
                    f"payload schema_version {version!r} is not the "
                    f"supported {ARCHIVE_SCHEMA_VERSION}"
                ),
            )
        )
