"""Retry policy and seeded exponential backoff for supervised campaigns.

The supervisor retries failed trial chunks with exponential backoff and
multiplicative jitter. The jitter draws from a named
:class:`~repro.sim.rng.RngFactory` stream derived from the campaign base
seed — the same seeded-stream convention the fault subsystem uses — so
a replayed campaign schedules byte-identical retry delays. Delays only
pace the retries; simulation results never depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy", "backoff_delay"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the trial supervisor reacts to failing chunks.

    Attributes:
        max_retries: Retries per chunk beyond its first attempt; a chunk
            failing ``max_retries + 1`` times is quarantined (or aborts
            the campaign when ``quarantine`` is off).
        quarantine: Record trials that exhaust their retries in the
            campaign manifest (with replay seeds) and complete the
            campaign without them, instead of aborting with
            :class:`~repro.exceptions.TrialQuarantinedError`.
        base_delay: First backoff delay in seconds.
        backoff_factor: Multiplier per additional attempt.
        max_delay: Cap on any single delay.
        jitter: Multiplicative jitter span: the delay is scaled by a
            seeded uniform draw from ``[1, 1 + jitter]`` (0 disables).
        max_total_retries: Campaign-wide retry budget across all chunks;
            exceeding it aborts the campaign — a systemic failure is not
            something per-chunk retries should paper over.
        pool_downgrade_after: Worker-pool breakages (hard worker
            crashes) tolerated before the supervisor degrades the
            campaign to in-process execution.
    """

    max_retries: int = 2
    quarantine: bool = True
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    max_total_retries: int = 100
    pool_downgrade_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_total_retries < 0:
            raise ConfigurationError(
                f"max_total_retries must be >= 0, got {self.max_total_retries}"
            )
        if self.pool_downgrade_after < 1:
            raise ConfigurationError(
                f"pool_downgrade_after must be >= 1, got "
                f"{self.pool_downgrade_after}"
            )


def backoff_delay(
    policy: RetryPolicy, attempt: int, rng: np.random.Generator
) -> float:
    """Delay in seconds before retrying a chunk that failed ``attempt`` times.

    ``attempt`` is zero-based (the delay after the first failure uses
    ``attempt=0``). Consumes exactly one draw from ``rng`` when the
    policy has jitter, so delay sequences replay with the seed.
    """
    if attempt < 0:
        raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
    delay = policy.base_delay * policy.backoff_factor**attempt
    if policy.jitter > 0:
        delay *= 1.0 + policy.jitter * float(rng.uniform(0.0, 1.0))
    return min(policy.max_delay, delay)
