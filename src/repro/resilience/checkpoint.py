"""Checkpoint journals: crash-safe per-experiment trial logs.

A supervised campaign with ``checkpoint_dir`` set journals every
completed trial as one JSONL line in
``<checkpoint_dir>/<experiment>.journal.jsonl``. A later run of the
same campaign (``m2hew batch --resume <dir>``) restores those trials
and only executes the missing ones; because per-trial seeds derive from
``(base_seed, trial_index)`` independently of execution order, the
resumed campaign's archives are byte-identical to an uninterrupted run.

Crash-safety model:

* the journal file is **created atomically** (header written via
  tmp + fsync + rename), so a journal either exists with a valid header
  or not at all;
* trial lines are **append-only**, flushed and fsynced per record; a
  kill mid-append can tear at most the final line, which
  :meth:`TrialJournal.open` detects and discards on restore;
* a torn line anywhere *before* the end cannot come from an append
  crash — that is real corruption and raises
  :class:`~repro.exceptions.ArchiveCorruptionError`.

The header pins a fingerprint of the campaign (spec + base seed), so a
journal can never silently resume a *different* campaign: a mismatch is
a :class:`~repro.exceptions.ConfigurationError`.

The distributed queue (:mod:`repro.resilience.distributed`) stores its
lease, heartbeat and completion-marker **sidecar files** next to the
journal's source of truth. A worker killed mid-fsync can tear any of
them; :func:`load_sidecar` applies the same tolerance the journal
applies to its final line — a torn sidecar reads as absent, never as
corruption, because every sidecar is re-creatable operational state.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional, Union

from ..exceptions import ArchiveCorruptionError, ConfigurationError
from .atomic import atomic_write_text, sha256_of_text

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JOURNAL_SUFFIX",
    "TrialJournal",
    "campaign_fingerprint",
    "journal_path",
    "load_sidecar",
]


def load_sidecar(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a JSON sidecar file (lease, heartbeat, chunk marker) tolerantly.

    Returns the parsed object, or ``None`` when the file is missing,
    unreadable, torn mid-write, or not a JSON object. Sidecars are
    written by other processes that may die at any byte of the write —
    the crash-during-fsync of a new worker must read as "no sidecar",
    exactly as a torn final journal line reads as "trial not recorded".
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    return payload

JOURNAL_SCHEMA_VERSION = 1

#: Journal filename suffix; ``verify-archive`` ignores files carrying it
#: so a checkpoint directory may double as the output directory.
JOURNAL_SUFFIX = ".journal.jsonl"


def journal_path(checkpoint_dir: Union[str, Path], experiment: str) -> Path:
    """Journal file for one experiment of a checkpointed campaign."""
    return Path(checkpoint_dir) / f"{experiment}{JOURNAL_SUFFIX}"


def campaign_fingerprint(payload: Mapping[str, Any]) -> str:
    """Stable digest of the campaign facts a journal must match to resume."""
    return sha256_of_text(json.dumps(payload, sort_keys=True))


class TrialJournal:
    """Append-only JSONL journal of one experiment's completed trials.

    Use :meth:`open` — it creates the journal (atomically) on first use
    and restores completed trials from an existing one, validating the
    header fingerprint either way.
    """

    def __init__(
        self,
        path: Path,
        restored: Dict[int, Dict[str, Any]],
        handle: IO[str],
    ) -> None:
        self.path = path
        #: Trial payloads restored from a previous run, keyed by index.
        self.restored = restored
        self._handle: Optional[IO[str]] = handle

    @classmethod
    def open(
        cls,
        checkpoint_dir: Union[str, Path],
        experiment: str,
        fingerprint: str,
    ) -> "TrialJournal":
        """Create or resume the journal for ``experiment``.

        Raises:
            ConfigurationError: The existing journal was written for a
                different campaign (fingerprint mismatch).
            ArchiveCorruptionError: The existing journal is corrupt in a
                way a mid-append crash cannot explain.
        """
        path = journal_path(checkpoint_dir, experiment)
        restored: Dict[int, Dict[str, Any]] = {}
        if path.exists():
            restored = cls._load(path, experiment, fingerprint)
        else:
            header = {
                "kind": "header",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "experiment": experiment,
                "fingerprint": fingerprint,
            }
            atomic_write_text(path, json.dumps(header, sort_keys=True) + "\n")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, restored, handle)

    @staticmethod
    def _load(
        path: Path, experiment: str, fingerprint: str
    ) -> Dict[int, Dict[str, Any]]:
        lines = path.read_text(encoding="utf-8").split("\n")
        # A trailing newline yields one empty final entry; strip it so
        # "last line" below means the last *record*.
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise ArchiveCorruptionError(f"journal {path} is empty")
        records = []
        for lineno, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if lineno == len(lines) - 1:
                    # Torn final append from a kill-mid-write: the trial
                    # it described simply re-runs.
                    break
                raise ArchiveCorruptionError(
                    f"journal {path} line {lineno + 1} is corrupt "
                    "(not a torn final append)"
                ) from exc
        if not records or records[0].get("kind") != "header":
            raise ArchiveCorruptionError(f"journal {path} has no header line")
        header = records[0]
        if header.get("schema_version") != JOURNAL_SCHEMA_VERSION:
            raise ArchiveCorruptionError(
                f"journal {path} has unsupported schema_version "
                f"{header.get('schema_version')!r}"
            )
        if header.get("experiment") != experiment or (
            header.get("fingerprint") != fingerprint
        ):
            raise ConfigurationError(
                f"journal {path} was written for a different campaign "
                "(spec/base-seed fingerprint mismatch); resume with the "
                "original arguments or use a fresh checkpoint directory"
            )
        restored: Dict[int, Dict[str, Any]] = {}
        for record in records[1:]:
            if record.get("kind") != "trial":
                raise ArchiveCorruptionError(
                    f"journal {path} contains an unknown record kind "
                    f"{record.get('kind')!r}"
                )
            # Duplicate indices can only arise from a crash between the
            # append and the supervisor observing it; last write wins.
            restored[int(record["trial"])] = record["result"]
        return restored

    def record(self, trial_index: int, result_payload: Mapping[str, Any]) -> None:
        """Append one completed trial, flushed and fsynced before returning."""
        if self._handle is None:
            raise ConfigurationError("journal is closed")
        line = json.dumps(
            {"kind": "trial", "trial": trial_index, "result": dict(result_payload)},
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (restored payloads stay available)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
