"""The chunk-executor interface behind supervised trial execution.

:func:`~repro.resilience.supervisor.run_supervised_trials` plans a
campaign as a list of :class:`_ChunkState` dispatch units and a
:class:`_Supervision` record of shared campaign state (outcome, policy,
journal, chaos plan, backoff RNG). *How* those chunks execute is the
executor's business, behind one interface:

* :class:`PooledChunkExecutor` — process-pool dispatch with per-chunk
  retry and crash-driven degradation (the original ``_run_pooled``);
* :class:`InProcessChunkExecutor` — the serial chunk loop with the same
  retry/quarantine semantics (the original ``_run_in_process``);
* :class:`~repro.resilience.distributed.DistributedChunkExecutor` — the
  multi-host file-queue coordinator (lease claims, heartbeats,
  dead-lease reclamation, degradation to local execution).

Executors form a degradation ladder: each one marks the chunks it
finished ``done`` and returns; whatever is left falls through to the
next executor (pool → in-process; distributed → in-process). Because
every executor records results keyed by trial index through the same
:class:`_Supervision` bookkeeping — and trial ``t`` always runs from
``derive_trial_seed(base_seed, t)`` — the archived bytes cannot depend
on which executor (or which host) a trial eventually succeeded on.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
from abc import ABC, abstractmethod
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TrialQuarantinedError
from ..sim.parallel import ParallelPlan, _ChunkPayload, _run_chunk, _wrap_failure
from ..sim.results import DiscoveryResult
from .chaos import ChaosPlan
from .checkpoint import TrialJournal
from .policy import RetryPolicy, backoff_delay

__all__ = [
    "ChunkExecutor",
    "InProcessChunkExecutor",
    "PooledChunkExecutor",
    "QuarantinedTrial",
    "SupervisedTrials",
    "SupervisorEvent",
]

_logger = logging.getLogger("repro.resilience")


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision decision (retry, rebuild, downgrade, quarantine)."""

    kind: str
    experiment: Optional[str]
    detail: str
    trial_indices: Tuple[int, ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """JSON form for manifests and logs."""
        payload: Dict[str, Any] = {"kind": self.kind, "detail": self.detail}
        if self.experiment is not None:
            payload["experiment"] = self.experiment
        if self.trial_indices:
            payload["trials"] = list(self.trial_indices)
        return payload


@dataclass(frozen=True)
class QuarantinedTrial:
    """A trial that exhausted its retry budget and was set aside.

    ``base_seed`` + ``trial`` are the replay coordinates: the failing
    seed is ``derive_trial_seed(base_seed, trial)``.
    """

    experiment: Optional[str]
    trial: int
    base_seed: Optional[int]
    error: str

    def as_dict(self) -> Dict[str, Any]:
        """JSON form recorded in the campaign manifest."""
        return {
            "experiment": self.experiment,
            "trial": self.trial,
            "base_seed": self.base_seed,
            "error": self.error,
        }


@dataclass
class SupervisedTrials:
    """Outcome of one experiment's supervised trials."""

    experiment: Optional[str]
    trials: int
    base_seed: Optional[int]
    completed: Dict[int, DiscoveryResult] = field(default_factory=dict)
    quarantined: List[QuarantinedTrial] = field(default_factory=list)
    events: List[SupervisorEvent] = field(default_factory=list)
    #: Trials restored from a checkpoint journal rather than executed.
    restored: int = 0

    @property
    def complete(self) -> bool:
        """Whether every trial produced a result (nothing quarantined)."""
        return len(self.completed) == self.trials

    def results_in_order(self) -> List[Tuple[int, DiscoveryResult]]:
        """``(trial_index, result)`` pairs sorted by trial index."""
        return sorted(self.completed.items())


@dataclass
class _ChunkState:
    indices: Tuple[int, ...]
    attempt: int = 0
    vectorized: bool = False
    done: bool = False


class _Supervision:
    """Mutable campaign state shared by every chunk executor."""

    def __init__(
        self,
        outcome: SupervisedTrials,
        policy: RetryPolicy,
        journal: Optional[TrialJournal],
        chaos: Optional[ChaosPlan],
        sleep: Callable[[float], None],
        make_payload: Callable[[_ChunkState], _ChunkPayload],
        isolate_payload: Callable[[int], _ChunkPayload],
        jitter_rng: np.random.Generator,
        on_progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.outcome = outcome
        self.policy = policy
        self.journal = journal
        self.chaos = chaos
        self.sleep = sleep
        self.make_payload = make_payload
        self.isolate_payload = isolate_payload
        self.on_progress = on_progress
        self.total_retries = 0
        self.pool_breakages = 0
        # Constructed by the supervisor (the RNG stream's registered
        # owner) and injected, so every executor shares one seeded
        # backoff sequence.
        self.jitter_rng = jitter_rng

    # -- bookkeeping ----------------------------------------------------

    def event(self, kind: str, detail: str, indices: Tuple[int, ...] = ()) -> None:
        evt = SupervisorEvent(
            kind=kind,
            experiment=self.outcome.experiment,
            detail=detail,
            trial_indices=indices,
        )
        self.outcome.events.append(evt)
        _logger.warning("[%s] %s: %s", self.outcome.experiment or "-", kind, detail)

    def record_success(
        self, state: _ChunkState, results: Sequence[DiscoveryResult]
    ) -> None:
        for trial, result in zip(state.indices, results):
            self.outcome.completed[trial] = result
            if self.journal is not None:
                self.journal.record(trial, result.to_dict())
        state.done = True
        self.notify_progress()

    def notify_progress(self) -> None:
        """Report ``(completed, trials)`` to the observer, if any.

        Fires only after the journal already holds the trials being
        reported, so an observer that checkpoints or streams on every
        call never sees state the journal has not committed.
        """
        if self.on_progress is not None:
            self.on_progress(len(self.outcome.completed), self.outcome.trials)

    # -- failure handling -----------------------------------------------

    def handle_failure(
        self, state: _ChunkState, exc: BaseException, *, timed_out: bool
    ) -> None:
        """Retry, isolate or quarantine a failed chunk attempt.

        Sets ``state.done`` when the chunk will not be re-dispatched
        (its trials were recovered in isolation or quarantined); leaves
        it pending — with ``attempt`` advanced and the backoff already
        slept — when the caller should resubmit it.
        """
        if state.vectorized:
            # The batched engine produced the failure (or was at least
            # in the loop); the per-trial path is byte-identical, so
            # retrying through it removes one suspect for free.
            state.vectorized = False
            self.event(
                "downgrade_vectorized",
                "retrying chunk through the per-trial loop",
                state.indices,
            )
        if state.attempt >= self.policy.max_retries:
            if timed_out:
                # An in-process re-run of a hanging trial cannot be
                # bounded; quarantine the chunk's trials outright.
                self.quarantine_chunk(state, exc, reason="timed out")
            else:
                self.isolate_chunk(state, exc)
            state.done = True
            return
        self.total_retries += 1
        if self.total_retries > self.policy.max_total_retries:
            raise _wrap_failure(
                exc,
                kind="exhausted the campaign retry budget "
                f"({self.policy.max_total_retries} retries)",
                experiment=self.outcome.experiment,
                indices=state.indices,
                base_seed=self.outcome.base_seed,
            )
        delay = backoff_delay(self.policy, state.attempt, self.jitter_rng)
        state.attempt += 1
        self.event(
            "retry",
            f"attempt {state.attempt} after "
            f"{type(exc).__name__} (backoff {delay:.3f}s)",
            state.indices,
        )
        self.sleep(delay)

    def isolate_chunk(self, state: _ChunkState, cause: BaseException) -> None:
        """Re-run an exhausted chunk trial-by-trial, quarantining failures.

        A chunk groups several trials; only the poisonous ones deserve
        quarantine. Isolation runs in-process so a crashing worker
        cannot take healthy trials down with it.
        """
        for trial in state.indices:
            payload = self.isolate_payload(trial)
            try:
                results = _run_chunk(payload)
            except Exception as exc:
                self.quarantine_trial(trial, exc)
            else:
                self.outcome.completed[trial] = results[0]
                if self.journal is not None:
                    self.journal.record(trial, results[0].to_dict())
                self.notify_progress()

    def quarantine_chunk(
        self, state: _ChunkState, exc: BaseException, *, reason: str
    ) -> None:
        for trial in state.indices:
            if trial not in self.outcome.completed:
                self.quarantine_trial(trial, exc, reason=reason)

    def quarantine_trial(
        self, trial: int, exc: BaseException, *, reason: Optional[str] = None
    ) -> None:
        detail = reason or f"{type(exc).__name__}: {exc}"
        if not self.policy.quarantine:
            err = TrialQuarantinedError(
                f"experiment {self.outcome.experiment or '<unnamed>'!r}: trial "
                f"{trial} exhausted {self.policy.max_retries} retries "
                f"({detail}); replay with derive_trial_seed("
                f"{self.outcome.base_seed!r}, {trial})",
                experiment=self.outcome.experiment,
                trial_indices=(trial,),
                base_seed=self.outcome.base_seed,
            )
            err.__cause__ = exc
            raise err
        self.outcome.quarantined.append(
            QuarantinedTrial(
                experiment=self.outcome.experiment,
                trial=trial,
                base_seed=self.outcome.base_seed,
                error=detail,
            )
        )
        self.event("quarantine", detail, (trial,))


class ChunkExecutor(ABC):
    """One way of executing a campaign's pending dispatch chunks.

    ``run`` must drive every chunk it takes responsibility for to
    ``state.done`` through the supervision's bookkeeping
    (:meth:`_Supervision.record_success` / ``handle_failure``), and may
    return early with chunks still pending — the supervisor hands
    leftovers to the next rung of the degradation ladder.
    """

    @abstractmethod
    def run(self, states: List[_ChunkState], sup: _Supervision) -> None:
        """Execute (some of) the pending chunks."""


class PooledChunkExecutor(ChunkExecutor):
    """Pool dispatch with per-chunk retry and crash-driven degradation.

    Rounds: submit every unfinished chunk, collect strictly in dispatch
    order, retry soft failures on the live pool; a broken pool or a
    timeout ends the round (the executor is dropped) and the next round
    resubmits whatever is left. After ``policy.pool_downgrade_after``
    breakages the remaining chunks fall through to the in-process loop.
    """

    def __init__(
        self, plan: ParallelPlan, trial_timeout: Optional[float] = None
    ) -> None:
        self.plan = plan
        self.trial_timeout = trial_timeout

    def run(self, states: List[_ChunkState], sup: _Supervision) -> None:
        context = multiprocessing.get_context(self.plan.start_method)
        while any(not s.done for s in states):
            open_states = [s for s in states if not s.done]
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.plan.max_workers, len(open_states)),
                mp_context=context,
            )
            try:
                pending: List[Tuple[_ChunkState, Any]] = [
                    (state, executor.submit(_run_chunk, sup.make_payload(state)))
                    for state in open_states
                ]
                index = 0
                while index < len(pending):
                    state, future = pending[index]
                    index += 1
                    if state.done:  # finished by a retry earlier this round
                        continue
                    if sup.chaos is not None and sup.chaos.times_out(
                        state.indices, state.attempt
                    ):
                        future.cancel()
                        sup.handle_failure(
                            state,
                            concurrent.futures.TimeoutError(
                                "chaos: injected chunk timeout"
                            ),
                            timed_out=True,
                        )
                        break  # timeout semantics: the pool is suspect
                    budget = (
                        None
                        if self.trial_timeout is None
                        else self.trial_timeout * len(state.indices)
                    )
                    try:
                        results = future.result(timeout=budget)
                    except BrokenProcessPool as exc:
                        sup.pool_breakages += 1
                        if sup.pool_breakages >= sup.policy.pool_downgrade_after:
                            sup.event(
                                "downgrade_pool",
                                f"{sup.pool_breakages} worker-pool breakages; "
                                "running remaining chunks in-process",
                            )
                            return  # leftovers fall through the ladder
                        sup.event(
                            "pool_rebuild",
                            f"worker pool broke ({exc}); rebuilding and "
                            "resubmitting unfinished chunks",
                            state.indices,
                        )
                        break
                    except concurrent.futures.TimeoutError as exc:
                        # A stuck worker cannot be interrupted cooperatively;
                        # drop the pool so the straggler cannot poison later
                        # chunks, then re-dispatch on a fresh one.
                        sup.handle_failure(state, exc, timed_out=True)
                        break
                    except Exception as exc:
                        sup.handle_failure(state, exc, timed_out=False)
                        if not state.done:
                            pending.append(
                                (
                                    state,
                                    executor.submit(
                                        _run_chunk, sup.make_payload(state)
                                    ),
                                )
                            )
                        continue
                    sup.record_success(state, results)
            finally:
                executor.shutdown(wait=False, cancel_futures=True)


class InProcessChunkExecutor(ChunkExecutor):
    """Serial chunk loop with the same retry/quarantine semantics.

    The bottom rung of every degradation ladder: it cannot crash a
    pool, lose a lease or strand a worker, so it always drives its
    chunks to ``done`` (completing or quarantining them).
    """

    def run(self, states: List[_ChunkState], sup: _Supervision) -> None:
        for state in states:
            while not state.done:
                if sup.chaos is not None and sup.chaos.times_out(
                    state.indices, state.attempt
                ):
                    sup.handle_failure(
                        state,
                        concurrent.futures.TimeoutError(
                            "chaos: injected chunk timeout"
                        ),
                        timed_out=True,
                    )
                    continue
                try:
                    results = _run_chunk(sup.make_payload(state))
                except Exception as exc:
                    sup.handle_failure(state, exc, timed_out=False)
                    continue
                sup.record_success(state, results)
