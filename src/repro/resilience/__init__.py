"""Resilient campaign execution.

Everything that keeps a long seeded campaign alive and its archives
trustworthy when the execution substrate misbehaves:

* :mod:`~repro.resilience.supervisor` — supervised trial execution:
  per-chunk retries with seeded backoff, quarantine of trials that
  exhaust their budget, graceful pool/vectorized degradation;
* :mod:`~repro.resilience.executor` — the chunk-executor interface the
  supervisor dispatches through (pool, in-process, distributed);
* :mod:`~repro.resilience.distributed` — multi-host campaign sharding:
  a file-based lease queue with worker heartbeats, dead-lease
  reclamation and crash-tolerant work stealing (``m2hew worker``);
* :mod:`~repro.resilience.policy` — the knobs for the above;
* :mod:`~repro.resilience.checkpoint` — append-only per-trial journals
  enabling ``m2hew batch --resume``;
* :mod:`~repro.resilience.verify` — self-verification of format-2
  archives (checksums, schema stamps, orphan detection);
* :mod:`~repro.resilience.atomic` — crash-safe file writes shared by
  all of the above;
* :mod:`~repro.resilience.chaos` — deterministic execution-layer fault
  injection for testing all of the above.

The guiding invariant is inherited from :mod:`repro.sim.parallel`:
recovery may change *how* trials execute, never *what* they compute —
a campaign that retried, degraded or resumed archives byte-identical
results to one that ran clean.
"""

from .atomic import atomic_write_text, sha256_of_bytes, sha256_of_file, sha256_of_text
from .chaos import (
    CHAOS_MODES,
    ChaosEvent,
    ChaosInjectedFailure,
    ChaosPlan,
    flip_byte,
    parse_chaos_spec,
    truncate_file,
)
from .checkpoint import (
    JOURNAL_SCHEMA_VERSION,
    JOURNAL_SUFFIX,
    TrialJournal,
    campaign_fingerprint,
    journal_path,
    load_sidecar,
)
from .distributed import (
    DISTRIBUTED_BACKEND,
    QUEUE_SCHEMA_VERSION,
    DistributedChunkExecutor,
    LeasePolicy,
    QueueWorker,
    RemoteWorkerFailure,
    WorkQueue,
    run_worker,
)
from .executor import ChunkExecutor, InProcessChunkExecutor, PooledChunkExecutor
from .policy import RetryPolicy, backoff_delay
from .supervisor import (
    ARCHIVED_EVENT_KINDS,
    QuarantinedTrial,
    SupervisedTrials,
    SupervisorEvent,
    run_supervised_trials,
)
from .verify import (
    ARCHIVE_SCHEMA_VERSION,
    VerificationIssue,
    VerificationReport,
    verify_archive,
)

__all__ = [
    "ARCHIVED_EVENT_KINDS",
    "ARCHIVE_SCHEMA_VERSION",
    "CHAOS_MODES",
    "ChaosEvent",
    "ChaosInjectedFailure",
    "ChaosPlan",
    "ChunkExecutor",
    "DISTRIBUTED_BACKEND",
    "DistributedChunkExecutor",
    "InProcessChunkExecutor",
    "JOURNAL_SCHEMA_VERSION",
    "JOURNAL_SUFFIX",
    "LeasePolicy",
    "PooledChunkExecutor",
    "QUEUE_SCHEMA_VERSION",
    "QuarantinedTrial",
    "QueueWorker",
    "RemoteWorkerFailure",
    "RetryPolicy",
    "SupervisedTrials",
    "SupervisorEvent",
    "TrialJournal",
    "VerificationIssue",
    "VerificationReport",
    "WorkQueue",
    "atomic_write_text",
    "backoff_delay",
    "campaign_fingerprint",
    "flip_byte",
    "journal_path",
    "load_sidecar",
    "parse_chaos_spec",
    "run_supervised_trials",
    "run_worker",
    "sha256_of_bytes",
    "sha256_of_file",
    "sha256_of_text",
    "truncate_file",
    "verify_archive",
]
