"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses distinguish the three
broad failure domains: invalid configuration, invalid network models and
simulation-time violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkModelError",
    "SimulationError",
    "ClockModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class NetworkModelError(ReproError):
    """A network instance violates the M2HeW model assumptions.

    Examples: a node with an empty available channel set, a link whose
    span is empty, or an asymmetric adjacency passed to a symmetric-only
    construction.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unsupported state."""


class ClockModelError(ReproError):
    """A clock model violates the bounded-drift assumption (eq. (1))."""
