"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses distinguish the three
broad failure domains: invalid configuration, invalid network models and
simulation-time violations.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkModelError",
    "SimulationError",
    "ClockModelError",
    "TrialExecutionError",
    "TrialTimeoutError",
    "TrialQuarantinedError",
    "ArchiveCorruptionError",
    "QuotaExceededError",
    "JobCancelledError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class NetworkModelError(ReproError):
    """A network instance violates the M2HeW model assumptions.

    Examples: a node with an empty available channel set, a link whose
    span is empty, or an asymmetric adjacency passed to a symmetric-only
    construction.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unsupported state."""


class ClockModelError(ReproError):
    """A clock model violates the bounded-drift assumption (eq. (1))."""


class TrialExecutionError(SimulationError):
    """A dispatched trial failed (worker exception or crashed process).

    Carries everything needed to replay the failing trial in-process:
    the experiment name, the trial indices of the chunk that failed and
    the campaign's ``base_seed`` — the failing seed is
    ``derive_trial_seed(base_seed, trial_index)``.
    """

    def __init__(
        self,
        message: str,
        *,
        experiment: Optional[str] = None,
        trial_indices: Sequence[int] = (),
        base_seed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.experiment = experiment
        self.trial_indices = tuple(trial_indices)
        self.base_seed = base_seed


class TrialTimeoutError(TrialExecutionError):
    """A dispatched trial chunk exceeded its wall-clock budget."""


class TrialQuarantinedError(TrialExecutionError):
    """A trial exhausted its supervised retry budget.

    Raised by the trial supervisor when a trial keeps failing after
    ``max_retries`` attempts and quarantine is disabled; with quarantine
    enabled the same information is recorded in the campaign manifest
    instead and the campaign completes without the trial. Carries the
    standard replay fields of :class:`TrialExecutionError`.
    """


class ArchiveCorruptionError(ReproError):
    """An experiment archive or checkpoint journal failed verification.

    Raised when a results directory shows truncation, a content-hash
    mismatch, or structurally invalid payloads — i.e. the archived bytes
    can no longer be trusted to reproduce the campaign they describe.
    """


class QuotaExceededError(ReproError):
    """A campaign submission was rejected by the service's quota policy.

    Raised by the campaign scheduler when accepting the submission would
    exceed the queue depth, a client's share of it, or a client's
    minimum spacing between submissions. The service maps it to HTTP
    429; nothing about the rejected campaign is recorded.
    """


class JobCancelledError(ReproError):
    """A queued or running campaign job was cancelled.

    Cancellation is cooperative: the worker observes the cancel flag at
    its next progress point and unwinds by raising this. Trials the
    journal already recorded stay recorded, so a re-submission of the
    same campaign resumes rather than recomputes.
    """
