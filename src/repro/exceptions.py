"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class. Subclasses distinguish the three
broad failure domains: invalid configuration, invalid network models and
simulation-time violations.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkModelError",
    "SimulationError",
    "ClockModelError",
    "TrialExecutionError",
    "TrialTimeoutError",
    "TrialQuarantinedError",
    "ArchiveCorruptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or parameter combination was supplied."""


class NetworkModelError(ReproError):
    """A network instance violates the M2HeW model assumptions.

    Examples: a node with an empty available channel set, a link whose
    span is empty, or an asymmetric adjacency passed to a symmetric-only
    construction.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unsupported state."""


class ClockModelError(ReproError):
    """A clock model violates the bounded-drift assumption (eq. (1))."""


class TrialExecutionError(SimulationError):
    """A dispatched trial failed (worker exception or crashed process).

    Carries everything needed to replay the failing trial in-process:
    the experiment name, the trial indices of the chunk that failed and
    the campaign's ``base_seed`` — the failing seed is
    ``derive_trial_seed(base_seed, trial_index)``.
    """

    def __init__(
        self,
        message: str,
        *,
        experiment: Optional[str] = None,
        trial_indices: Sequence[int] = (),
        base_seed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.experiment = experiment
        self.trial_indices = tuple(trial_indices)
        self.base_seed = base_seed


class TrialTimeoutError(TrialExecutionError):
    """A dispatched trial chunk exceeded its wall-clock budget."""


class TrialQuarantinedError(TrialExecutionError):
    """A trial exhausted its supervised retry budget.

    Raised by the trial supervisor when a trial keeps failing after
    ``max_retries`` attempts and quarantine is disabled; with quarantine
    enabled the same information is recorded in the campaign manifest
    instead and the campaign completes without the trial. Carries the
    standard replay fields of :class:`TrialExecutionError`.
    """


class ArchiveCorruptionError(ReproError):
    """An experiment archive or checkpoint journal failed verification.

    Raised when a results directory shows truncation, a content-hash
    mismatch, or structurally invalid payloads — i.e. the archived bytes
    can no longer be trusted to reproduce the campaign they describe.
    """
