"""Algorithm 4 — asynchronous system with drifting clocks (paper §IV).

Each node divides its *local* time into frames of length ``L`` and each
frame into three equal slots. At the start of each frame the node picks
a channel uniformly at random from ``A(u)`` and, with probability
``min(1/2, |A(u)| / (3 Δ_est))``, transmits its hello during *each* of
the frame's three slots; otherwise it listens on that channel for the
whole frame.

Why three slots: with clock drift bounded by ``δ <= 1/7`` (Assumption 1),
Lemma 7 shows that among any two consecutive full frames of two
neighbors, some pair is *aligned* — one transmitted slot falls entirely
inside the other node's listening frame — so a repeated-transmission
frame is heard whenever the usual coverage conditions hold. Theorems
9–10 then bound discovery by
``(48 max(2S, 3Δ_est)/ρ) ln(N²/ε)`` full frames per node after ``T_s``.

This class carries only the per-frame decision logic; local-to-real time
mapping, slot timing and the medium live in
:mod:`repro.sim.async_engine`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import AsynchronousProtocol, FrameDecision, UniformChannelMixin
from .params import validate_delta_est

__all__ = ["AsyncFrameDiscovery", "SLOTS_PER_FRAME"]

#: The paper fixes three slots per frame; Lemma 7's case analysis is
#: specific to this value (together with the 1/7 drift bound).
SLOTS_PER_FRAME = 3


class AsyncFrameDiscovery(UniformChannelMixin, AsynchronousProtocol):
    """The paper's Algorithm 4.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        delta_est: Common upper bound on the maximum node degree.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        delta_est: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._delta_est = validate_delta_est(delta_est)
        self._p = min(
            0.5, self.channel_count / float(SLOTS_PER_FRAME * self._delta_est)
        )

    @property
    def delta_est(self) -> int:
        """The degree upper bound this node was configured with."""
        return self._delta_est

    @property
    def frame_transmit_probability(self) -> float:
        """``min(1/2, |A(u)| / (3 Δ_est))``."""
        return self._p

    def decide_frame(self, local_frame: int) -> FrameDecision:
        return self._uniform_frame_decision(self._p)
