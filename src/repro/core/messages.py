"""Protocol messages.

All four of the paper's algorithms transmit a single kind of message: a
*hello* carrying the sender's identity and its available channel set
``A(u)`` (Algorithm 1 line 8, Algorithm 3 line 7, Algorithm 4 line 7).
A receiver ``u`` that hears a clear hello from ``v`` records
``⟨v, A ∩ A(u)⟩`` in its neighbor table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from ..exceptions import ConfigurationError

__all__ = ["HelloMessage"]


@dataclass(frozen=True)
class HelloMessage:
    """A neighbor-discovery hello.

    Attributes:
        sender: Node id of the transmitter.
        channels: The transmitter's available channel set ``A(v)``.
    """

    sender: int
    channels: FrozenSet[int]

    def __post_init__(self) -> None:
        if not isinstance(self.channels, frozenset):
            object.__setattr__(self, "channels", frozenset(self.channels))
        if not self.channels:
            raise ConfigurationError(
                f"hello from node {self.sender} with empty channel set"
            )

    def common_channels(self, receiver_channels: Iterable[int]) -> FrozenSet[int]:
        """``A(sender) ∩ A(receiver)`` — what the receiver records."""
        return self.channels & frozenset(receiver_channels)

    @property
    def size_bytes(self) -> int:
        """Rough encoded size: 4-byte id + 2 bytes per channel.

        Used only by accounting/efficiency metrics; the simulators treat
        every hello as fitting in one slot, as the paper assumes.
        """
        return 4 + 2 * len(self.channels)
