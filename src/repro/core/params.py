"""Parameter validation shared by the algorithms and bound calculators."""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError

__all__ = [
    "MAX_DRIFT_RATE",
    "stage_length",
    "validate_delta_est",
    "validate_epsilon",
    "validate_drift",
    "validate_frame_length",
]

#: Assumption 1 of the paper: the asynchronous algorithm tolerates clock
#: drift rates up to 1/7 seconds/second.
MAX_DRIFT_RATE = 1.0 / 7.0


def validate_delta_est(delta_est: int) -> int:
    """Check a maximum-node-degree estimate.

    The staged algorithm needs ``Δ_est >= 2`` so that a stage has at
    least one slot (``ceil(log2 Δ_est) >= 1``); Algorithm 2 likewise
    starts its estimate at 2.
    """
    if not isinstance(delta_est, (int,)) or isinstance(delta_est, bool):
        raise ConfigurationError(f"delta_est must be an int, got {delta_est!r}")
    if delta_est < 2:
        raise ConfigurationError(f"delta_est must be >= 2, got {delta_est}")
    return delta_est


def validate_epsilon(epsilon: float) -> float:
    """Check a failure-probability target ``ε ∈ (0, 1)``."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return float(epsilon)


def validate_drift(delta: float, enforce_assumption: bool = False) -> float:
    """Check a drift-rate bound ``δ``.

    Args:
        delta: Maximum clock drift rate (``0`` = ideal clocks).
        enforce_assumption: Also require ``δ <= 1/7`` (Assumption 1).
            Engines leave this off so ablation experiments can push past
            the assumption; the bound calculators turn it on.
    """
    if delta < 0:
        raise ConfigurationError(f"drift bound must be non-negative, got {delta}")
    if delta >= 1.0:
        raise ConfigurationError(
            f"drift bound must be < 1 for clocks to advance, got {delta}"
        )
    if enforce_assumption and delta > MAX_DRIFT_RATE + 1e-12:
        raise ConfigurationError(
            f"Assumption 1 requires drift <= 1/7 ~= {MAX_DRIFT_RATE:.4f}, got {delta}"
        )
    return float(delta)


def validate_frame_length(frame_length: float) -> float:
    """Check a local frame length ``L`` (any positive value)."""
    if frame_length <= 0:
        raise ConfigurationError(
            f"frame_length must be positive, got {frame_length}"
        )
    return float(frame_length)


def stage_length(delta_est: int) -> int:
    """``ceil(log2 Δ_est)`` — slots per stage in Algorithms 1 and 2."""
    validate_delta_est(delta_est)
    return max(1, math.ceil(math.log2(delta_est)))
