"""Protocol registry: build protocol factories by name.

Engines take a *protocol factory* — a callable
``(node_id, channels, rng) -> protocol`` — so they stay independent of
any concrete algorithm. This module maps human-readable names (used by
the CLI and the workload configs) to factories, closing over
algorithm-specific parameters.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, Sequence, TypeVar

import numpy as np

from ..baselines.deterministic_scan import DeterministicScanProtocol
from ..baselines.universal_sweep import UniversalSweepProtocol
from ..exceptions import ConfigurationError
from .algorithm1 import StagedSyncDiscovery
from .algorithm2 import GrowingEstimateSyncDiscovery
from .algorithm3 import FlatSyncDiscovery
from .algorithm4 import AsyncFrameDiscovery
from .base import AsynchronousProtocol, SynchronousProtocol

__all__ = [
    "SYNCHRONOUS_PROTOCOLS",
    "ASYNCHRONOUS_PROTOCOLS",
    "SyncFactory",
    "AsyncFactory",
    "make_sync_factory",
    "make_async_factory",
]

SyncFactory = Callable[[int, FrozenSet[int], np.random.Generator], SynchronousProtocol]
AsyncFactory = Callable[[int, FrozenSet[int], np.random.Generator], AsynchronousProtocol]

#: Names accepted by :func:`make_sync_factory`.
SYNCHRONOUS_PROTOCOLS = (
    "algorithm1",
    "algorithm2",
    "algorithm3",
    "universal_sweep",
    "deterministic_scan",
)

#: Names accepted by :func:`make_async_factory`.
ASYNCHRONOUS_PROTOCOLS = ("algorithm4",)


def make_sync_factory(
    name: str,
    delta_est: Optional[int] = None,
    universal_channels: Optional[Sequence[int]] = None,
    id_space_size: Optional[int] = None,
) -> SyncFactory:
    """Factory for a synchronous protocol by name.

    Args:
        name: One of :data:`SYNCHRONOUS_PROTOCOLS`.
        delta_est: Degree bound — required by ``algorithm1``,
            ``algorithm3`` and ``universal_sweep``.
        universal_channels: Agreed universal set — required by
            ``universal_sweep`` and ``deterministic_scan``.
        id_space_size: ``N_max`` — required by ``deterministic_scan``.
    """
    if name == "algorithm1":
        de = _require(delta_est, "algorithm1 requires delta_est")
        return lambda nid, chs, rng: StagedSyncDiscovery(nid, chs, rng, de)
    if name == "algorithm2":
        return lambda nid, chs, rng: GrowingEstimateSyncDiscovery(nid, chs, rng)
    if name == "algorithm3":
        de = _require(delta_est, "algorithm3 requires delta_est")
        return lambda nid, chs, rng: FlatSyncDiscovery(nid, chs, rng, de)
    if name == "universal_sweep":
        de = _require(delta_est, "universal_sweep requires delta_est")
        uni = list(_require(universal_channels, "universal_sweep requires universal_channels"))
        return lambda nid, chs, rng: UniversalSweepProtocol(nid, chs, rng, uni, de)
    if name == "deterministic_scan":
        uni = list(
            _require(universal_channels, "deterministic_scan requires universal_channels")
        )
        nmax = _require(id_space_size, "deterministic_scan requires id_space_size")
        return lambda nid, chs, rng: DeterministicScanProtocol(nid, chs, rng, uni, nmax)
    raise ConfigurationError(
        f"unknown synchronous protocol {name!r}; choose from {SYNCHRONOUS_PROTOCOLS}"
    )


def make_async_factory(name: str, delta_est: Optional[int] = None) -> AsyncFactory:
    """Factory for an asynchronous protocol by name."""
    if name == "algorithm4":
        de = _require(delta_est, "algorithm4 requires delta_est")
        return lambda nid, chs, rng: AsyncFrameDiscovery(nid, chs, rng, de)
    raise ConfigurationError(
        f"unknown asynchronous protocol {name!r}; choose from {ASYNCHRONOUS_PROTOCOLS}"
    )


_T = TypeVar("_T")


def _require(value: Optional[_T], message: str) -> _T:
    if value is None:
        raise ConfigurationError(message)
    return value
