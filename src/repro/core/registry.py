"""Protocol registry: one declarative table of every discovery protocol.

Engines take a *protocol factory* — a callable
``(node_id, channels, rng) -> protocol`` — so they stay independent of
any concrete algorithm. This module maps human-readable names (used by
the CLI, the workload configs and the tournament) to factories, closing
over algorithm-specific parameters.

The registry is a table of :class:`ProtocolSpec` entries carrying
**capability flags** next to each name: which parameters the protocol
requires (``needs_delta_est`` / ``needs_universal`` /
``needs_id_space``), whether it fits the vectorized engines' uniform
slot template (``vectorized``) and whether the trial-batched engine may
take it (``batched``). Every downstream surface — the runner's engine
auto-selection, batch-campaign validation, the CLI's ``--protocol``
choices, the conformance test parametrization — derives from this one
table, so registering a protocol here is the *only* step needed to
enroll it everywhere (a drift test pins that property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..baselines.deterministic_scan import DeterministicScanProtocol
from ..baselines.universal_sweep import UniversalSweepProtocol
from ..exceptions import ConfigurationError
from .algorithm1 import StagedSyncDiscovery
from .algorithm2 import GrowingEstimateSyncDiscovery
from .algorithm3 import FlatSyncDiscovery
from .algorithm4 import AsyncFrameDiscovery
from .base import AsynchronousProtocol, SynchronousProtocol
from .mcdis import McDisDiscovery
from .robust import RobustFlatDiscovery, RobustStagedDiscovery

__all__ = [
    "ASYNCHRONOUS_PROTOCOLS",
    "AsyncFactory",
    "BATCHED_PROTOCOLS",
    "PROTOCOL_SPECS",
    "ProtocolSpec",
    "SYNCHRONOUS_PROTOCOLS",
    "SyncFactory",
    "VECTORIZED_PROTOCOLS",
    "make_async_factory",
    "make_sync_factory",
    "protocol_spec",
]

SyncFactory = Callable[[int, FrozenSet[int], np.random.Generator], SynchronousProtocol]
AsyncFactory = Callable[[int, FrozenSet[int], np.random.Generator], AsynchronousProtocol]


@dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol and its capability flags.

    Attributes:
        name: Registry key (CLI / workload / archive protocol name).
        kind: ``"sync"`` (slotted engines) or ``"async"`` (frame engine).
        summary: One-line description for listings.
        needs_delta_est: Factory requires a degree bound ``Δ_est``.
        needs_universal: Factory requires the agreed universal channel
            set (baselines only).
        needs_id_space: Factory requires the id-space size ``N_max``.
        vectorized: Fits the *uniform channel + Bernoulli transmit*
            template, so the fast (numpy) engine can run it via a
            :class:`~repro.sim.fast_slotted.VectorSchedule`.
        batched: The trial-batched engine
            (:class:`~repro.sim.batched.BatchedSlottedSimulator`) claims
            support; implies ``vectorized``.
    """

    name: str
    kind: str
    summary: str
    needs_delta_est: bool = False
    needs_universal: bool = False
    needs_id_space: bool = False
    vectorized: bool = False
    batched: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("sync", "async"):
            raise ConfigurationError(
                f"protocol kind must be 'sync' or 'async', got {self.kind!r}"
            )
        if self.batched and not self.vectorized:
            raise ConfigurationError(
                f"protocol {self.name!r} claims batched support without a "
                "vectorized schedule"
            )


#: The full protocol table: the paper's algorithms, the rival protocols
#: the tournament races them against, and the §I baselines.
PROTOCOL_SPECS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        "algorithm1",
        "sync",
        "paper Alg. 1: staged geometric probability sweep",
        needs_delta_est=True,
        vectorized=True,
        batched=True,
    ),
    ProtocolSpec(
        "algorithm2",
        "sync",
        "paper Alg. 2: growing degree estimate, no knowledge",
        vectorized=True,
        batched=True,
    ),
    ProtocolSpec(
        "algorithm3",
        "sync",
        "paper Alg. 3: flat probability, variable start times",
        needs_delta_est=True,
        vectorized=True,
        batched=True,
    ),
    ProtocolSpec(
        "robust_staged",
        "sync",
        "1505.00267 rival: staged sweep with loss-compensating repeats",
        needs_delta_est=True,
        vectorized=True,
        batched=True,
    ),
    ProtocolSpec(
        "robust_flat",
        "sync",
        "1505.00267 rival: flat schedule at half contention",
        needs_delta_est=True,
        vectorized=True,
        batched=True,
    ),
    ProtocolSpec(
        "mcdis",
        "sync",
        "1307.3630 rival: modular-clock channel-hopping rendezvous",
    ),
    ProtocolSpec(
        "universal_sweep",
        "sync",
        "§I strawman: per-channel birthday over the universal set",
        needs_delta_est=True,
        needs_universal=True,
    ),
    ProtocolSpec(
        "deterministic_scan",
        "sync",
        "deterministic baseline: Θ(N_max·|U|) round-robin scan",
        needs_universal=True,
        needs_id_space=True,
    ),
    ProtocolSpec(
        "algorithm4",
        "async",
        "paper Alg. 4: asynchronous frames under drifting clocks",
        needs_delta_est=True,
    ),
)

_SPEC_BY_NAME = {spec.name: spec for spec in PROTOCOL_SPECS}

#: Names accepted by :func:`make_sync_factory`, in table order.
SYNCHRONOUS_PROTOCOLS: Tuple[str, ...] = tuple(
    spec.name for spec in PROTOCOL_SPECS if spec.kind == "sync"
)

#: Names accepted by :func:`make_async_factory`.
ASYNCHRONOUS_PROTOCOLS: Tuple[str, ...] = tuple(
    spec.name for spec in PROTOCOL_SPECS if spec.kind == "async"
)

#: Synchronous protocols the fast (numpy) engine can run.
VECTORIZED_PROTOCOLS: Tuple[str, ...] = tuple(
    spec.name for spec in PROTOCOL_SPECS if spec.vectorized
)

#: Synchronous protocols the trial-batched engine claims.
BATCHED_PROTOCOLS: Tuple[str, ...] = tuple(
    spec.name for spec in PROTOCOL_SPECS if spec.batched
)


def protocol_spec(name: str) -> ProtocolSpec:
    """Look up a registered protocol's spec by name."""
    try:
        return _SPEC_BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; choose from "
            f"{tuple(s.name for s in PROTOCOL_SPECS)}"
        ) from None


def make_sync_factory(
    name: str,
    delta_est: Optional[int] = None,
    universal_channels: Optional[Sequence[int]] = None,
    id_space_size: Optional[int] = None,
) -> SyncFactory:
    """Factory for a synchronous protocol by name.

    Args:
        name: One of :data:`SYNCHRONOUS_PROTOCOLS`.
        delta_est: Degree bound — required where the spec says
            ``needs_delta_est``.
        universal_channels: Agreed universal set — required where the
            spec says ``needs_universal``.
        id_space_size: ``N_max`` — required where the spec says
            ``needs_id_space``.

    Parameters a protocol does not need are ignored, so callers may pass
    one uniform parameter set for any registered name.
    """
    spec = _SPEC_BY_NAME.get(name)
    if spec is None or spec.kind != "sync":
        raise ConfigurationError(
            f"unknown synchronous protocol {name!r}; choose from "
            f"{SYNCHRONOUS_PROTOCOLS}"
        )
    de = (
        _require(delta_est, f"{name} requires delta_est")
        if spec.needs_delta_est
        else None
    )
    uni = (
        list(_require(universal_channels, f"{name} requires universal_channels"))
        if spec.needs_universal
        else None
    )
    nmax = (
        _require(id_space_size, f"{name} requires id_space_size")
        if spec.needs_id_space
        else None
    )
    if name == "algorithm1":
        assert de is not None
        return lambda nid, chs, rng: StagedSyncDiscovery(nid, chs, rng, de)
    if name == "algorithm2":
        return lambda nid, chs, rng: GrowingEstimateSyncDiscovery(nid, chs, rng)
    if name == "algorithm3":
        assert de is not None
        return lambda nid, chs, rng: FlatSyncDiscovery(nid, chs, rng, de)
    if name == "robust_staged":
        assert de is not None
        return lambda nid, chs, rng: RobustStagedDiscovery(nid, chs, rng, de)
    if name == "robust_flat":
        assert de is not None
        return lambda nid, chs, rng: RobustFlatDiscovery(nid, chs, rng, de)
    if name == "mcdis":
        return lambda nid, chs, rng: McDisDiscovery(nid, chs, rng)
    if name == "universal_sweep":
        assert de is not None and uni is not None
        return lambda nid, chs, rng: UniversalSweepProtocol(nid, chs, rng, uni, de)
    if name == "deterministic_scan":
        assert uni is not None and nmax is not None
        return lambda nid, chs, rng: DeterministicScanProtocol(
            nid, chs, rng, uni, nmax
        )
    raise AssertionError(f"spec table lists {name!r} but no builder exists")


def make_async_factory(name: str, delta_est: Optional[int] = None) -> AsyncFactory:
    """Factory for an asynchronous protocol by name."""
    if name == "algorithm4":
        de = _require(delta_est, "algorithm4 requires delta_est")
        return lambda nid, chs, rng: AsyncFrameDiscovery(nid, chs, rng, de)
    raise ConfigurationError(
        f"unknown asynchronous protocol {name!r}; choose from "
        f"{ASYNCHRONOUS_PROTOCOLS}"
    )


_T = TypeVar("_T")


def _require(value: Optional[_T], message: str) -> _T:
    if value is None:
        raise ConfigurationError(message)
    return value
