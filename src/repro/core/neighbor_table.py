"""The discovered-neighbor table each node maintains.

The output of every algorithm is "the set of neighbors along with the
subset of channels that are common with the neighbor". This table stores
exactly that, plus bookkeeping the analysis layer uses: when each
neighbor was first discovered and how many (redundant) hellos were heard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

from ..exceptions import SimulationError
from .messages import HelloMessage

__all__ = ["NeighborRecord", "NeighborTable"]


@dataclass
class NeighborRecord:
    """One discovered neighbor.

    Attributes:
        neighbor_id: The discovered node.
        common_channels: ``A(neighbor) ∩ A(self)`` as reported by the
            first clear hello. Under the paper's base model this equals
            the link span; under diverse propagation (§V(c)) it is an
            *upper bound* on the span.
        first_heard_at: Local slot index (synchronous) or local frame
            index (asynchronous) of the first clear hello.
        hello_count: Number of clear hellos heard from this neighbor.
        heard_on: Channels a clear hello was actually received on — a
            confirmed *lower bound* on the span, used by the diverse-
            propagation adaptation ([23]) to prune ``common_channels``.
    """

    neighbor_id: int
    common_channels: FrozenSet[int]
    first_heard_at: float
    hello_count: int = 1
    heard_on: Set[int] = field(default_factory=set)


class NeighborTable:
    """Per-node table of discovered neighbors.

    The table belongs to a specific node; it intersects incoming channel
    sets with the owner's own available channel set, mirroring line 11
    of Algorithms 1/3/4.
    """

    def __init__(self, owner_id: int, owner_channels: Iterable[int]) -> None:
        self._owner_id = owner_id
        self._owner_channels = frozenset(owner_channels)
        self._records: Dict[int, NeighborRecord] = {}

    @property
    def owner_id(self) -> int:
        """The node this table belongs to."""
        return self._owner_id

    @property
    def owner_channels(self) -> FrozenSet[int]:
        """``A(owner)``."""
        return self._owner_channels

    def record_hello(
        self,
        message: HelloMessage,
        heard_at: float,
        channel: Optional[int] = None,
    ) -> bool:
        """Record a clear hello; return ``True`` if the sender is new.

        Args:
            message: The received hello.
            heard_at: Local time of reception.
            channel: The channel the hello was received on, when the
                engine knows it; accumulated into ``heard_on``.

        Raises:
            SimulationError: If a node appears to have heard itself — a
                simulator bug, since a transceiver cannot transmit and
                receive simultaneously (§II).
        """
        if message.sender == self._owner_id:
            raise SimulationError(
                f"node {self._owner_id} received its own hello; "
                "engine collision semantics are broken"
            )
        existing = self._records.get(message.sender)
        if existing is not None:
            existing.hello_count += 1
            if channel is not None:
                existing.heard_on.add(channel)
            return False
        self._records[message.sender] = NeighborRecord(
            neighbor_id=message.sender,
            common_channels=message.common_channels(self._owner_channels),
            first_heard_at=heard_at,
            heard_on=set() if channel is None else {channel},
        )
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, neighbor_id: int) -> bool:
        return neighbor_id in self._records

    @property
    def neighbor_ids(self) -> FrozenSet[int]:
        """Ids of all discovered neighbors."""
        return frozenset(self._records)

    def record(self, neighbor_id: int) -> NeighborRecord:
        """The record for ``neighbor_id`` (must be discovered)."""
        try:
            return self._records[neighbor_id]
        except KeyError:
            raise SimulationError(
                f"node {self._owner_id} has not discovered {neighbor_id}"
            ) from None

    def common_channels(self, neighbor_id: int) -> FrozenSet[int]:
        """Channels shared with a discovered neighbor."""
        return self.record(neighbor_id).common_channels

    def confirmed_channels(self, neighbor_id: int) -> FrozenSet[int]:
        """Channels the neighbor was actually heard on (span lower bound)."""
        return frozenset(self.record(neighbor_id).heard_on)

    def first_heard_at(self, neighbor_id: int) -> Optional[float]:
        """When ``neighbor_id`` was first heard, or ``None`` if never."""
        rec = self._records.get(neighbor_id)
        return None if rec is None else rec.first_heard_at

    def as_dict(self) -> Dict[int, FrozenSet[int]]:
        """``{neighbor_id: common_channels}`` — the paper's output."""
        return {nid: rec.common_channels for nid, rec in self._records.items()}

    def total_hellos(self) -> int:
        """Total clear hellos heard (including redundant ones)."""
        return sum(rec.hello_count for rec in self._records.values())
