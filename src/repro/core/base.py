"""Protocol interfaces shared by the paper's algorithms and the baselines.

Two interfaces exist, matching the paper's two system models:

* :class:`SynchronousProtocol` — per-*slot* behavior for the slotted
  engines (:mod:`repro.sim.slotted`, :mod:`repro.sim.fast_slotted`).
  Each slot the node declares a :class:`SlotDecision`: which channel it
  tunes to and whether it transmits, listens or stays quiet.

* :class:`AsynchronousProtocol` — per-*frame* behavior for the
  continuous-time engine (:mod:`repro.sim.async_engine`). Each local
  frame the node declares a :class:`FrameDecision`; a transmitting node
  repeats its hello in each of the frame's three slots, a listening node
  listens for the whole frame (paper §IV).

Slot and frame indices passed to the decide methods are *local*: they
count from the moment this node started the protocol, which is how the
variable-start-time algorithms experience time.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

import numpy as np

from ..exceptions import ConfigurationError
from .messages import HelloMessage
from .neighbor_table import NeighborTable

__all__ = [
    "Mode",
    "SlotDecision",
    "FrameDecision",
    "DiscoveryProtocol",
    "SynchronousProtocol",
    "AsynchronousProtocol",
    "UniformChannelMixin",
]


class Mode(enum.Enum):
    """Transceiver mode for one slot/frame (§II: exactly one at a time)."""

    TRANSMIT = "transmit"
    LISTEN = "listen"
    QUIET = "quiet"


@dataclass(frozen=True)
class SlotDecision:
    """What a node does in one synchronous time slot.

    Attributes:
        mode: Transmit, listen, or quiet (transceiver off).
        channel: The channel tuned to; ``None`` iff quiet.
    """

    mode: Mode
    channel: Optional[int]

    def __post_init__(self) -> None:
        if self.mode is Mode.QUIET:
            if self.channel is not None:
                raise ConfigurationError("quiet decision must not carry a channel")
        elif self.channel is None:
            raise ConfigurationError(f"{self.mode.value} decision requires a channel")

    @classmethod
    def transmit(cls, channel: int) -> "SlotDecision":
        return cls(Mode.TRANSMIT, channel)

    @classmethod
    def listen(cls, channel: int) -> "SlotDecision":
        return cls(Mode.LISTEN, channel)

    @classmethod
    def quiet(cls) -> "SlotDecision":
        return cls(Mode.QUIET, None)


@dataclass(frozen=True)
class FrameDecision:
    """What a node does during one local frame (asynchronous model)."""

    mode: Mode
    channel: Optional[int]

    def __post_init__(self) -> None:
        if self.mode is Mode.QUIET:
            if self.channel is not None:
                raise ConfigurationError("quiet decision must not carry a channel")
        elif self.channel is None:
            raise ConfigurationError(f"{self.mode.value} decision requires a channel")


class DiscoveryProtocol(abc.ABC):
    """State common to all neighbor-discovery protocols.

    Args:
        node_id: Identity of the node running the protocol.
        channels: ``A(u)`` — the node's available channel set.
        rng: The node's private random stream.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
    ) -> None:
        self._node_id = node_id
        self._channels = frozenset(channels)
        if not self._channels:
            raise ConfigurationError(f"node {node_id} has no available channels")
        self._channel_list = sorted(self._channels)
        self._rng = rng
        self._table = NeighborTable(node_id, self._channels)

    @property
    def node_id(self) -> int:
        """The node running this protocol instance."""
        return self._node_id

    @property
    def channels(self) -> FrozenSet[int]:
        """``A(u)``."""
        return self._channels

    @property
    def channel_count(self) -> int:
        """``|A(u)|``."""
        return len(self._channels)

    @property
    def neighbor_table(self) -> NeighborTable:
        """Discovered neighbors so far."""
        return self._table

    def hello(self) -> HelloMessage:
        """The hello message this node transmits."""
        return HelloMessage(sender=self._node_id, channels=self._channels)

    def on_receive(
        self,
        message: HelloMessage,
        heard_at: float,
        channel: Optional[int] = None,
    ) -> bool:
        """Handle a clear hello; return ``True`` if the sender was new.

        ``channel`` is the reception channel when the engine knows it
        (all bundled engines pass it); see
        :meth:`NeighborTable.record_hello`.
        """
        return self._table.record_hello(message, heard_at, channel)

    def _random_channel(self) -> int:
        """A channel selected uniformly at random from ``A(u)``."""
        idx = int(self._rng.integers(0, len(self._channel_list)))
        return self._channel_list[idx]


class SynchronousProtocol(DiscoveryProtocol):
    """Slot-driven protocol for the synchronous engines."""

    @abc.abstractmethod
    def decide_slot(self, local_slot: int) -> SlotDecision:
        """Decision for the node's ``local_slot``-th slot (0-based)."""

    def transmit_probability(self, local_slot: int) -> Optional[float]:
        """Per-slot transmit probability, if the protocol fits the
        "uniform random channel + Bernoulli transmit" template.

        The vectorized engine (:mod:`repro.sim.fast_slotted`) uses this
        hook; protocols with a different structure (e.g. the
        deterministic baseline) return ``None`` and are only runnable on
        the reference engine.
        """
        return None


class AsynchronousProtocol(DiscoveryProtocol):
    """Frame-driven protocol for the asynchronous engine."""

    @abc.abstractmethod
    def decide_frame(self, local_frame: int) -> FrameDecision:
        """Decision for the node's ``local_frame``-th frame (0-based)."""


class UniformChannelMixin:
    """Shared implementation of the paper's slot template.

    All four algorithms share the same per-slot/per-frame skeleton:
    select a channel uniformly at random from ``A(u)`` and transmit with
    some probability ``p``, listening otherwise. Subclasses provide only
    the probability schedule.
    """

    def _uniform_slot_decision(self, p: float) -> SlotDecision:
        channel = self._random_channel()  # type: ignore[attr-defined]
        rng = self._rng  # type: ignore[attr-defined]
        if rng.random() < p:
            return SlotDecision.transmit(channel)
        return SlotDecision.listen(channel)

    def _uniform_frame_decision(self, p: float) -> FrameDecision:
        channel = self._random_channel()  # type: ignore[attr-defined]
        rng = self._rng  # type: ignore[attr-defined]
        if rng.random() < p:
            return FrameDecision(Mode.TRANSMIT, channel)
        return FrameDecision(Mode.LISTEN, channel)
