"""Mc-Dis — channel-hopping rendezvous discovery (Chen & Bian, arXiv:1307.3630).

The rival family the tournament races against: instead of the paper's
*uniform random channel + Bernoulli transmit* template, Mc-Dis nodes
follow a deterministic **modular-clock channel-hopping sequence** and
rendezvous when two neighbors' sequences land on a shared channel in the
same slot. Our slotted adaptation:

* each node hops with period ``P(u)`` — the smallest prime
  ``>= max(2, |A(u)|)`` — visiting channel
  ``A(u)[((r·t + φ) mod P) mod |A(u)|]`` in local slot ``t``, where the
  *rate* ``r ∈ [1, P)`` and *phase* ``φ ∈ [0, P)`` are drawn from the
  node's private stream;
* because a fixed (rate, phase) pair can in principle never align two
  adversarial sequences, both are **redrawn every epoch** of
  ``EPOCH_FACTOR · P`` slots (the jump-stay-style randomization of the
  original), which makes eventual rendezvous almost sure;
* on its current hop channel the node transmits its hello with
  probability 1/2 and listens otherwise — the symmetry-breaking coin
  standing in for Mc-Dis's slot-edge beacons, which our single-action
  slot model cannot express (see ``docs/algorithms.md`` for the full
  list of deviations).

Channel selection is *not* uniform over ``A(u)`` in any single slot, so
the protocol does not fit the vectorized engines' template
(:meth:`~repro.core.base.SynchronousProtocol.transmit_probability`
stays ``None``): Mc-Dis runs on the reference engine only, which the
registry records via its capability flags.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import SlotDecision, SynchronousProtocol

__all__ = ["EPOCH_FACTOR", "McDisDiscovery", "smallest_prime_at_least"]

#: Epochs last this many hop periods before the (rate, phase) pair is
#: redrawn; long enough for a full rendezvous sweep at the current pair,
#: short enough that an unlucky pair is abandoned quickly.
EPOCH_FACTOR = 4


def smallest_prime_at_least(n: int) -> int:
    """The smallest prime ``>= max(2, n)`` (hop periods are prime so
    that distinct rates generate distinct full-cycle sequences)."""
    candidate = max(2, n)
    while True:
        if all(candidate % d for d in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


class McDisDiscovery(SynchronousProtocol):
    """Modular-clock channel-hopping rendezvous discovery.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream (drives the per-epoch
            rate/phase redraws and the transmit coin).
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._period = smallest_prime_at_least(len(self._channel_list))
        self._epoch_len = EPOCH_FACTOR * self._period
        self._epoch = -1
        self._rate = 1
        self._phase = 0
        # Coin weight for the transmit/listen split on the hop channel;
        # 1/2 maximizes the per-rendezvous discovery probability for a
        # neighbor pair (one must talk while the other listens).
        self._tx_probability = 0.5

    @property
    def hop_period(self) -> int:
        """``P(u)`` — the prime modular-clock period."""
        return self._period

    @property
    def epoch_length(self) -> int:
        """Slots between rate/phase redraws."""
        return self._epoch_len

    def _refresh_epoch(self, local_slot: int) -> None:
        epoch = local_slot // self._epoch_len
        if epoch == self._epoch:
            return
        self._epoch = epoch
        self._rate = int(self._rng.integers(1, self._period))
        self._phase = int(self._rng.integers(0, self._period))

    def hop_channel(self, local_slot: int) -> int:
        """The channel the current epoch's sequence visits this slot."""
        position = (self._rate * local_slot + self._phase) % self._period
        return self._channel_list[position % len(self._channel_list)]

    def decide_slot(self, local_slot: int) -> SlotDecision:
        self._refresh_epoch(local_slot)
        channel = self.hop_channel(local_slot)
        if self._rng.random() < self._tx_probability:
            return SlotDecision.transmit(channel)
        return SlotDecision.listen(channel)
