"""Closed-form bounds from the paper's analysis.

Every theorem and lemma with a quantitative statement is implemented
here so experiments can print "paper bound vs measured" side by side:

* eqs. (3)–(6): per-slot event and coverage probability lower bounds for
  Algorithm 1;
* Theorem 1/2/3 slot budgets for the synchronous algorithms;
* eq. (9): the Algorithm 3 transmission-event bound;
* Lemma 4 (overlap ≤ 3), Lemma 5 (aligned-pair coverage), Lemma 6
  (admissible-sequence length), Lemma 7 (drift thresholds), Lemma 8
  (M/6 extraction), Theorems 9–10 for the asynchronous algorithm.

All bounds are *high-probability upper bounds on time* (equivalently,
lower bounds on coverage probability); measured values should land at or
below the time bounds and at or above the probability bounds.
"""

from __future__ import annotations

import math
from typing import Dict

from ..exceptions import ConfigurationError
from .algorithm4 import SLOTS_PER_FRAME
from .params import (
    MAX_DRIFT_RATE,
    stage_length,
    validate_delta_est,
    validate_drift,
    validate_epsilon,
    validate_frame_length,
)

__all__ = [
    "pr_transmit_event_alg1",
    "pr_listen_event",
    "pr_no_interference_event",
    "stage_coverage_alg1",
    "theorem1_stage_budget",
    "theorem1_slot_budget",
    "theorem2_stage_budget",
    "theorem2_slot_budget",
    "pr_transmit_event_alg3",
    "slot_coverage_alg3",
    "theorem3_slot_budget",
    "lemma4_max_overlap",
    "lemma4_drift_threshold",
    "lemma5_pair_coverage",
    "lemma6_pair_budget",
    "lemma7_drift_threshold",
    "lemma8_extraction_factor",
    "theorem9_frame_budget",
    "theorem10_realtime_bound",
    "summary",
]


def _check_core(s: int, delta: int, rho: float) -> None:
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    if delta < 1:
        raise ConfigurationError(f"Delta must be >= 1, got {delta}")
    if not 0.0 < rho <= 1.0:
        raise ConfigurationError(f"rho must be in (0, 1], got {rho}")


def _check_population(n: int, epsilon: float) -> None:
    if n < 2:
        raise ConfigurationError(f"N must be >= 2 for links to exist, got {n}")
    validate_epsilon(epsilon)


def _ln_links_term(n: int, epsilon: float) -> float:
    """``ln(N² / ε)`` — the union-bound term over all links."""
    return math.log(n * n / epsilon)


# ----------------------------------------------------------------------
# Algorithm 1 (eqs. (3)-(6), Theorem 1)
# ----------------------------------------------------------------------


def pr_transmit_event_alg1(s: int, delta: int) -> float:
    """Eq. (3): ``Pr{A(τ, c)} >= 1 / (2 max(S, Δ))``.

    Probability that, in the stage slot matched to the link's degree
    (eq. (2)), the transmitter picks channel ``c`` and transmits.
    """
    _check_core(s, delta, 1.0)
    return 1.0 / (2.0 * max(s, delta))


def pr_listen_event(receiver_channels: int) -> float:
    """Eq. (4): ``Pr{B(τ, c)} >= 1 / (2 |A(u)|)``."""
    if receiver_channels < 1:
        raise ConfigurationError(
            f"receiver channel count must be >= 1, got {receiver_channels}"
        )
    return 1.0 / (2.0 * receiver_channels)


def pr_no_interference_event() -> float:
    """Eq. (5): ``Pr{C(τ, c)} >= 1/4``."""
    return 0.25


def stage_coverage_alg1(s: int, delta: int, rho: float) -> float:
    """Eq. (6): a stage covers a given link w.p. ``>= ρ / (16 max(S, Δ))``."""
    _check_core(s, delta, rho)
    return rho / (16.0 * max(s, delta))


def theorem1_stage_budget(s: int, delta: int, rho: float, n: int, epsilon: float) -> int:
    """``M = (16 max(S, Δ)/ρ) ln(N²/ε)`` stages (Theorem 1's budget)."""
    _check_core(s, delta, rho)
    _check_population(n, epsilon)
    return math.ceil((16.0 * max(s, delta) / rho) * _ln_links_term(n, epsilon))


def theorem1_slot_budget(
    s: int, delta: int, rho: float, n: int, epsilon: float, delta_est: int
) -> int:
    """Theorem 1: slots = stage budget × ``ceil(log2 Δ_est)``."""
    validate_delta_est(delta_est)
    return theorem1_stage_budget(s, delta, rho, n, epsilon) * stage_length(delta_est)


# ----------------------------------------------------------------------
# Algorithm 2 (Theorem 2)
# ----------------------------------------------------------------------


def theorem2_stage_budget(s: int, delta: int, rho: float, n: int, epsilon: float) -> int:
    """``Δ + M`` stages: the estimate must first grow to ``Δ`` (§III-A2)."""
    return delta + theorem1_stage_budget(s, delta, rho, n, epsilon)


def theorem2_slot_budget(s: int, delta: int, rho: float, n: int, epsilon: float) -> int:
    """Exact slot count of the first ``Δ + M`` stages of Algorithm 2.

    Stage for estimate ``d`` has ``ceil(log2 d)`` slots, ``d`` starting
    at 2; summing gives the ``O(M log M)`` of Theorem 2 exactly.
    """
    stages = theorem2_stage_budget(s, delta, rho, n, epsilon)
    return sum(stage_length(d) for d in range(2, 2 + stages))


# ----------------------------------------------------------------------
# Algorithm 3 (eq. (9), Theorem 3)
# ----------------------------------------------------------------------


def pr_transmit_event_alg3(s: int, delta_est: int) -> float:
    """Eq. (9): ``Pr{A(τ, c)} >= 1 / max(2S, Δ_est)``."""
    if s < 1:
        raise ConfigurationError(f"S must be >= 1, got {s}")
    validate_delta_est(delta_est)
    return 1.0 / max(2.0 * s, float(delta_est))


def slot_coverage_alg3(s: int, delta_est: int, rho: float) -> float:
    """Per-slot link coverage for Algorithm 3: ``ρ / (8 max(2S, Δ_est))``.

    Combines eq. (9) with eqs. (4)-(5) and the sum over the link's span,
    exactly as eq. (6) does for Algorithm 1.
    """
    _check_core(s, 1, rho)
    validate_delta_est(delta_est)
    return rho / (8.0 * max(2.0 * s, float(delta_est)))


def theorem3_slot_budget(
    s: int, delta_est: int, rho: float, n: int, epsilon: float
) -> int:
    """Theorem 3: ``(8 max(2S, Δ_est)/ρ) ln(N²/ε)`` slots after ``T_s``."""
    _check_population(n, epsilon)
    return math.ceil(_ln_links_term(n, epsilon) / slot_coverage_alg3(s, delta_est, rho))


# ----------------------------------------------------------------------
# Asynchronous system (Lemmas 4-8, Theorems 9-10)
# ----------------------------------------------------------------------


def lemma4_max_overlap() -> int:
    """Lemma 4: a frame overlaps at most 3 frames of any other node."""
    return 3


def lemma4_drift_threshold() -> float:
    """Drift above which Lemma 4's proof breaks: ``δ > 1/3``."""
    return 1.0 / 3.0


def lemma5_pair_coverage(s: int, delta_est: int, rho: float) -> float:
    """Lemma 5: an aligned pair covers a link w.p.
    ``>= ρ / (8 max(2S, 3 Δ_est))``."""
    _check_core(s, 1, rho)
    validate_delta_est(delta_est)
    return rho / (8.0 * max(2.0 * s, SLOTS_PER_FRAME * float(delta_est)))


def lemma6_pair_budget(s: int, delta_est: int, rho: float, n: int, epsilon: float) -> int:
    """Lemma 6: ``(8 max(2S, 3Δ_est)/ρ) ln(N²/ε)`` admissible pairs
    leave a link uncovered w.p. at most ``ε/N²``."""
    _check_population(n, epsilon)
    return math.ceil(_ln_links_term(n, epsilon) / lemma5_pair_coverage(s, delta_est, rho))


def lemma7_drift_threshold() -> float:
    """Assumption 1 / Lemma 7: alignment is guaranteed for ``δ <= 1/7``."""
    return MAX_DRIFT_RATE


def lemma8_extraction_factor() -> int:
    """Lemma 8: ``M`` full frames yield an admissible sequence of
    ``>= M/6`` pairs (factor 2 for alignment stepping, factor 3 for
    overlap separation)."""
    return 6


def theorem9_frame_budget(
    s: int, delta_est: int, rho: float, n: int, epsilon: float
) -> int:
    """Theorem 9: full frames per node after ``T_s`` for ``1 − ε`` success:
    ``(48 max(2S, 3Δ_est)/ρ) ln(N²/ε)``."""
    return lemma8_extraction_factor() * lemma6_pair_budget(s, delta_est, rho, n, epsilon)


def theorem10_realtime_bound(
    s: int,
    delta_est: int,
    rho: float,
    n: int,
    epsilon: float,
    frame_length: float,
    drift: float,
) -> float:
    """Theorem 10: ``T_f − T_s <= (frames + 1) · L / (1 − δ)``."""
    validate_frame_length(frame_length)
    validate_drift(drift, enforce_assumption=True)
    frames = theorem9_frame_budget(s, delta_est, rho, n, epsilon)
    return (frames + 1) * frame_length / (1.0 - drift)


# ----------------------------------------------------------------------
# convenience
# ----------------------------------------------------------------------


def summary(
    s: int,
    delta: int,
    rho: float,
    n: int,
    epsilon: float,
    delta_est: int,
    frame_length: float = 1.0,
    drift: float = 0.0,
) -> Dict[str, float]:
    """All budgets for one parameter point, keyed by theorem."""
    return {
        "theorem1_slots": theorem1_slot_budget(s, delta, rho, n, epsilon, delta_est),
        "theorem2_slots": theorem2_slot_budget(s, delta, rho, n, epsilon),
        "theorem3_slots": theorem3_slot_budget(s, delta_est, rho, n, epsilon),
        "theorem9_frames": theorem9_frame_budget(s, delta_est, rho, n, epsilon),
        "theorem10_realtime": theorem10_realtime_bound(
            s, delta_est, rho, n, epsilon, frame_length, drift
        ),
    }
