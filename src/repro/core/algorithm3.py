"""Algorithm 3 — synchronous, *variable* start times, known degree bound.

When nodes may start discovery at different slots, the stage structure of
Algorithm 1 breaks: two nodes' stages are misaligned, so the geometric
probability sweep no longer guarantees a contention-matched slot pair.
The fix (§III-B) is to make each node's transmission probability the
*same in every slot* — ``min(1/2, |A(u)| / Δ_est)`` — so any slot after
both endpoints have started covers a link with the same probability.

Theorem 3: all links are covered within
``O((max(2S, Δ_est)/ρ) · log(N/ε))`` slots after ``T_s`` (the time by
which all nodes have started) w.p. ``>= 1 − ε``. Note there is no
``log Δ_est`` factor any more, but the dependence on ``Δ_est`` is now
*linear*, so the paper requires the bound to be "good" (tight).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import SlotDecision, SynchronousProtocol, UniformChannelMixin
from .params import validate_delta_est

__all__ = ["FlatSyncDiscovery"]


class FlatSyncDiscovery(UniformChannelMixin, SynchronousProtocol):
    """The paper's Algorithm 3.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        delta_est: Common upper bound on the maximum node degree. Unlike
            Algorithm 1, running time grows linearly with it.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        delta_est: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._delta_est = validate_delta_est(delta_est)
        self._p = min(0.5, self.channel_count / float(self._delta_est))

    @property
    def delta_est(self) -> int:
        """The degree upper bound this node was configured with."""
        return self._delta_est

    def transmit_probability(self, local_slot: int) -> float:
        """Constant ``min(1/2, |A(u)| / Δ_est)``, independent of the slot."""
        return self._p

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self._p)
