"""The paper's contribution: the four neighbor-discovery algorithms.

* :class:`StagedSyncDiscovery` — Algorithm 1 (synchronous, identical
  starts, known degree bound, staged probability sweep).
* :class:`GrowingEstimateSyncDiscovery` — Algorithm 2 (synchronous,
  identical starts, no degree knowledge).
* :class:`FlatSyncDiscovery` — Algorithm 3 (synchronous, variable
  starts, known degree bound, flat probability).
* :class:`AsyncFrameDiscovery` — Algorithm 4 (asynchronous, drifting
  clocks, frame/slot structure).

Rival protocols the tournament races these against live here too:

* :class:`McDisDiscovery` — Mc-Dis channel-hopping rendezvous
  (arXiv:1307.3630 adaptation).
* :class:`RobustStagedDiscovery` / :class:`RobustFlatDiscovery` —
  robust variants for unreliable channels (arXiv:1505.00267).

:mod:`repro.core.bounds` carries the closed-form budgets from the
paper's theorems and lemmas; :mod:`repro.core.registry` is the
declarative table every protocol — paper, rival or baseline — is
enrolled through.
"""

from __future__ import annotations

from . import bounds
from .algorithm1 import StagedSyncDiscovery
from .algorithm2 import GrowingEstimateSyncDiscovery
from .algorithm3 import FlatSyncDiscovery
from .algorithm4 import SLOTS_PER_FRAME, AsyncFrameDiscovery
from .base import (
    AsynchronousProtocol,
    DiscoveryProtocol,
    FrameDecision,
    Mode,
    SlotDecision,
    SynchronousProtocol,
)
from .mcdis import McDisDiscovery
from .messages import HelloMessage
from .neighbor_table import NeighborRecord, NeighborTable
from .params import MAX_DRIFT_RATE, stage_length
from .registry import (
    ASYNCHRONOUS_PROTOCOLS,
    BATCHED_PROTOCOLS,
    PROTOCOL_SPECS,
    SYNCHRONOUS_PROTOCOLS,
    VECTORIZED_PROTOCOLS,
    ProtocolSpec,
    make_async_factory,
    make_sync_factory,
    protocol_spec,
)
from .robust import RobustFlatDiscovery, RobustStagedDiscovery

__all__ = [
    "ASYNCHRONOUS_PROTOCOLS",
    "AsyncFrameDiscovery",
    "AsynchronousProtocol",
    "BATCHED_PROTOCOLS",
    "DiscoveryProtocol",
    "FlatSyncDiscovery",
    "FrameDecision",
    "GrowingEstimateSyncDiscovery",
    "HelloMessage",
    "MAX_DRIFT_RATE",
    "McDisDiscovery",
    "Mode",
    "NeighborRecord",
    "NeighborTable",
    "PROTOCOL_SPECS",
    "ProtocolSpec",
    "RobustFlatDiscovery",
    "RobustStagedDiscovery",
    "SLOTS_PER_FRAME",
    "SYNCHRONOUS_PROTOCOLS",
    "SlotDecision",
    "StagedSyncDiscovery",
    "SynchronousProtocol",
    "VECTORIZED_PROTOCOLS",
    "bounds",
    "make_async_factory",
    "make_sync_factory",
    "protocol_spec",
    "stage_length",
]
