"""The paper's contribution: the four neighbor-discovery algorithms.

* :class:`StagedSyncDiscovery` — Algorithm 1 (synchronous, identical
  starts, known degree bound, staged probability sweep).
* :class:`GrowingEstimateSyncDiscovery` — Algorithm 2 (synchronous,
  identical starts, no degree knowledge).
* :class:`FlatSyncDiscovery` — Algorithm 3 (synchronous, variable
  starts, known degree bound, flat probability).
* :class:`AsyncFrameDiscovery` — Algorithm 4 (asynchronous, drifting
  clocks, frame/slot structure).

:mod:`repro.core.bounds` carries the closed-form budgets from the
paper's theorems and lemmas.
"""

from __future__ import annotations

from . import bounds
from .algorithm1 import StagedSyncDiscovery
from .algorithm2 import GrowingEstimateSyncDiscovery
from .algorithm3 import FlatSyncDiscovery
from .algorithm4 import SLOTS_PER_FRAME, AsyncFrameDiscovery
from .base import (
    AsynchronousProtocol,
    DiscoveryProtocol,
    FrameDecision,
    Mode,
    SlotDecision,
    SynchronousProtocol,
)
from .messages import HelloMessage
from .neighbor_table import NeighborRecord, NeighborTable
from .params import MAX_DRIFT_RATE, stage_length
from .registry import (
    ASYNCHRONOUS_PROTOCOLS,
    SYNCHRONOUS_PROTOCOLS,
    make_async_factory,
    make_sync_factory,
)

__all__ = [
    "ASYNCHRONOUS_PROTOCOLS",
    "AsyncFrameDiscovery",
    "AsynchronousProtocol",
    "DiscoveryProtocol",
    "FlatSyncDiscovery",
    "FrameDecision",
    "GrowingEstimateSyncDiscovery",
    "HelloMessage",
    "MAX_DRIFT_RATE",
    "Mode",
    "NeighborRecord",
    "NeighborTable",
    "SLOTS_PER_FRAME",
    "SYNCHRONOUS_PROTOCOLS",
    "SlotDecision",
    "StagedSyncDiscovery",
    "SynchronousProtocol",
    "bounds",
    "make_async_factory",
    "make_sync_factory",
    "stage_length",
]
