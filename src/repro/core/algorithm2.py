"""Algorithm 2 — synchronous, identical start times, *no* degree knowledge.

When no upper bound on the maximum node degree is available, the paper
(following Nakano & Olariu [24]) repeatedly executes *one stage* of
Algorithm 1 with sequentially increasing estimates ``d = 2, 3, 4, …``.
Once ``d >= Δ``, every subsequent stage contains a slot satisfying
eq. (2), so the Algorithm 1 analysis applies from that point on.

Theorem 2: discovery completes within ``O(M log M)`` slots w.p.
``>= 1 − ε``, where ``M = (16 max(S, Δ)/ρ) ln(N²/ε)``.

The simple doubling alternative (restart Algorithm 1 with
``Δ_est = 2, 4, 8, …``) does not work here because computing how long to
run each instance would require knowing ``N``, ``S`` and ``ρ`` (§III-A2);
the incremental schedule below needs no such knowledge.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .base import SlotDecision, SynchronousProtocol, UniformChannelMixin
from .params import stage_length

__all__ = ["GrowingEstimateSyncDiscovery"]


class GrowingEstimateSyncDiscovery(UniformChannelMixin, SynchronousProtocol):
    """The paper's Algorithm 2.

    The slot schedule is deterministic in the local slot index: slots are
    grouped into consecutive stages, the ``k``-th stage (``k >= 0``)
    using estimate ``d = 2 + k`` and lasting ``ceil(log2 d)`` slots.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id, channels, rng)
        # Cache of cumulative stage boundaries: _boundaries[k] = first
        # local slot of the stage with estimate d = 2 + k.
        self._boundaries = [0]

    def _extend_boundaries(self, local_slot: int) -> None:
        while self._boundaries[-1] <= local_slot:
            k = len(self._boundaries) - 1
            d = 2 + k
            self._boundaries.append(self._boundaries[-1] + stage_length(d))

    def schedule_position(self, local_slot: int) -> Tuple[int, int]:
        """``(d, i)`` — the estimate and 1-based slot-in-stage at a slot.

        Deterministic and identical across nodes, which is what makes
        the "identical start times" assumption give aligned stages.
        """
        if local_slot < 0:
            raise ValueError(f"local_slot must be non-negative, got {local_slot}")
        self._extend_boundaries(local_slot)
        # Binary search for the stage containing local_slot.
        lo, hi = 0, len(self._boundaries) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._boundaries[mid] <= local_slot:
                lo = mid
            else:
                hi = mid
        d = 2 + lo
        i = local_slot - self._boundaries[lo] + 1
        return d, i

    def current_estimate(self, local_slot: int) -> int:
        """The degree estimate ``d`` in force at ``local_slot``."""
        return self.schedule_position(local_slot)[0]

    def transmit_probability(self, local_slot: int) -> float:
        """``min(1/2, |A(u)| / 2^i)`` within the stage for estimate ``d``."""
        _, i = self.schedule_position(local_slot)
        return min(0.5, self.channel_count / float(2 ** i))

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self.transmit_probability(local_slot))

    @staticmethod
    def slots_until_estimate(target_estimate: int) -> int:
        """Total slots executed before the stage for ``target_estimate``.

        Useful for sizing simulation budgets: the analysis kicks in once
        ``d >= Δ``, i.e. after ``slots_until_estimate(Δ)`` slots.
        """
        if target_estimate < 2:
            raise ValueError(f"estimate starts at 2, got {target_estimate}")
        return sum(stage_length(d) for d in range(2, target_estimate))
