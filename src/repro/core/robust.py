"""Robust neighbor discovery variants (Zeng et al., arXiv:1505.00267).

The same group's follow-up targets exactly the regime our
:mod:`repro.faults` subsystem models: channels that lose even
collision-free hellos (Bernoulli/Gilbert–Elliott erasures, jamming
bursts). Both variants keep the paper's *uniform random channel +
Bernoulli transmit* slot template — so they run on all three
synchronous engines — and harden the probability schedule against loss:

* :class:`RobustStagedDiscovery` — the staged geometric sweep of
  Algorithm 1, but every probability level is **held for**
  ``R = ceil(1 / (1 − q_est))`` **consecutive slots**, where ``q_est``
  is the assumed per-delivery loss rate. A hello lost at the
  contention-optimal level gets ``R − 1`` immediate retries at the same
  level instead of waiting a whole stage for it to come around again.

* :class:`RobustFlatDiscovery` — the flat schedule of Algorithm 3 run
  at **half** the nominal per-channel contention,
  ``p = min(1/2, |A(u)| / (CONTENTION_MARGIN · Δ_est))``. Under loss,
  a collision costs a retransmission opportunity twice over (the slot
  *and* the recovery slot), so the robust variant trades peak rate for
  a collision probability quadratically smaller.

Neither tuning changes the coverage guarantee — only the constants in
the Theorem 1/3 budgets — which is what the fault-degradation
conformance tests pin: robust variants must degrade monotonically like
everything else, just more slowly.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..exceptions import ConfigurationError
from .base import SlotDecision, SynchronousProtocol, UniformChannelMixin
from .params import stage_length, validate_delta_est

__all__ = [
    "CONTENTION_MARGIN",
    "DEFAULT_LOSS_EST",
    "RobustFlatDiscovery",
    "RobustStagedDiscovery",
    "repeat_for_loss",
    "validate_loss_est",
]

#: Contention back-off factor of the robust flat schedule: the flat
#: probability is derated by this factor relative to Algorithm 3.
CONTENTION_MARGIN = 2

#: Loss-rate assumption the registry builds robust protocols with when
#: the caller does not supply one: a hello survives with probability
#: 1/2, so every probability level is held for 2 consecutive slots.
DEFAULT_LOSS_EST = 0.5


def validate_loss_est(loss_est: float) -> float:
    """Check an assumed per-delivery loss rate ``q_est ∈ [0, 1)``."""
    if not 0.0 <= loss_est < 1.0:
        raise ConfigurationError(
            f"loss_est must be in [0, 1), got {loss_est}"
        )
    return float(loss_est)


def repeat_for_loss(loss_est: float) -> int:
    """``R = ceil(1 / (1 − q_est))`` — slots each probability level is
    held so that one of them survives the channel in expectation."""
    return max(1, math.ceil(1.0 / (1.0 - validate_loss_est(loss_est))))


class RobustStagedDiscovery(UniformChannelMixin, SynchronousProtocol):
    """Loss-compensated staged sweep (1505.00267 regime, Alg. 1 skeleton).

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        delta_est: Common upper bound on the maximum node degree.
        loss_est: Assumed per-delivery loss rate ``q_est``; sets the
            per-level repetition ``R = ceil(1 / (1 − q_est))``.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        delta_est: int,
        loss_est: float = DEFAULT_LOSS_EST,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._delta_est = validate_delta_est(delta_est)
        self._stage_len = stage_length(self._delta_est)
        self._repeat = repeat_for_loss(loss_est)

    @property
    def delta_est(self) -> int:
        """The degree upper bound this node was configured with."""
        return self._delta_est

    @property
    def repeat(self) -> int:
        """``R`` — consecutive slots each probability level is held."""
        return self._repeat

    @property
    def slots_per_stage(self) -> int:
        """``R · ceil(log2 Δ_est)`` — one loss-compensated stage."""
        return self._repeat * self._stage_len

    def transmit_probability(self, local_slot: int) -> float:
        """``min(1/2, |A(u)| / 2^i)`` with level ``i`` held ``R`` slots."""
        i = (local_slot // self._repeat) % self._stage_len + 1
        return min(0.5, self.channel_count / float(2**i))

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self.transmit_probability(local_slot))


class RobustFlatDiscovery(UniformChannelMixin, SynchronousProtocol):
    """Contention-derated flat schedule (1505.00267 regime, Alg. 3 skeleton).

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        delta_est: Common upper bound on the maximum node degree; the
            flat probability is
            ``min(1/2, |A(u)| / (CONTENTION_MARGIN · Δ_est))``.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        delta_est: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._delta_est = validate_delta_est(delta_est)
        self._p = min(
            0.5, self.channel_count / float(CONTENTION_MARGIN * self._delta_est)
        )

    @property
    def delta_est(self) -> int:
        """The degree upper bound this node was configured with."""
        return self._delta_est

    def transmit_probability(self, local_slot: int) -> float:
        """The constant derated probability (independent of the slot)."""
        return self._p

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self._p)
