"""Algorithm 1 — synchronous, identical start times, known degree bound.

Execution is divided into *stages* of ``ceil(log2 Δ_est)`` slots. In slot
``i`` of a stage (1-based), node ``u`` picks a channel uniformly at
random from ``A(u)`` and transmits on it with probability
``min(1/2, |A(u)| / 2^i)``, listening otherwise.

The stage structure sweeps the per-channel transmission probability
through a geometric range so that, whatever the true degree
``Δ(u, c) <= Δ_est`` is, some slot of every stage has probability close
to the contention-optimal ``1/Δ(u, c)`` (eq. (2) in the paper).

Theorem 1: all links are covered within
``O((max(S, Δ)/ρ) · log Δ_est · log(N/ε))`` slots w.p. ``>= 1 − ε``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .base import SlotDecision, SynchronousProtocol, UniformChannelMixin
from .params import stage_length, validate_delta_est

__all__ = ["StagedSyncDiscovery"]


class StagedSyncDiscovery(UniformChannelMixin, SynchronousProtocol):
    """The paper's Algorithm 1.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        delta_est: Common upper bound on the maximum node degree
            (``Δ_est >= 2``; the bound may be loose — the running time
            depends on it only logarithmically).
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        delta_est: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._delta_est = validate_delta_est(delta_est)
        self._stage_len = stage_length(self._delta_est)

    @property
    def delta_est(self) -> int:
        """The degree upper bound this node was configured with."""
        return self._delta_est

    @property
    def slots_per_stage(self) -> int:
        """``ceil(log2 Δ_est)``."""
        return self._stage_len

    def slot_in_stage(self, local_slot: int) -> int:
        """1-based position of ``local_slot`` within its stage."""
        return (local_slot % self._stage_len) + 1

    def transmit_probability(self, local_slot: int) -> float:
        """``min(1/2, |A(u)| / 2^i)`` for slot ``i`` of the stage."""
        i = self.slot_in_stage(local_slot)
        return min(0.5, self.channel_count / float(2 ** i))

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self.transmit_probability(local_slot))
