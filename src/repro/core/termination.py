"""Node-local termination detection (extension).

The paper's algorithms run forever (``while true``); deciding *when a
node may stop* is deferred to companion work ([22] pairs discovery with
"lightweight termination detection"). The engines in this repository
use an oracle stop ("all links covered") for measurement. This module
adds the practical alternative: a **quiescence heuristic** — a node
stops after ``quiet_threshold`` consecutive local slots (or frames)
without learning a new neighbor.

Two termination policies, because a stopped node affects *others*:

* ``SLEEP`` — transceiver off. Saves the most energy but a node that
  stops early deprives slower neighbors of its hellos.
* ``BEACON`` — keep the protocol's transmission schedule but never
  listen (listen decisions become quiet). Costs tx energy, preserves
  everyone else's ability to discover the terminated node.

Choosing the threshold: if a link into ``u`` is still uncovered, one
slot covers it w.p. at least ``q = ρ / (8 max(2S, Δ_est))`` (Theorem 3
analysis), so ``K`` quiet slots are a false stop w.p. ``≤ (1 − q)^K``.
:func:`recommended_quiet_threshold` inverts that for a target local
failure probability.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..exceptions import ConfigurationError
from .base import (
    AsynchronousProtocol,
    FrameDecision,
    Mode,
    SlotDecision,
    SynchronousProtocol,
)
from .bounds import slot_coverage_alg3
from .messages import HelloMessage
from .neighbor_table import NeighborTable

__all__ = [
    "TerminationPolicy",
    "SelfTerminatingProtocol",
    "SelfTerminatingAsyncProtocol",
    "recommended_quiet_threshold",
]


class TerminationPolicy(enum.Enum):
    """What a terminated node does with its radio."""

    SLEEP = "sleep"
    BEACON = "beacon"


def recommended_quiet_threshold(
    s: int,
    delta_est: int,
    rho: float,
    local_epsilon: float,
) -> int:
    """Quiet slots after which a false stop has probability ≤ ``local_epsilon``.

    Derived from the Algorithm 3 per-slot coverage bound: an uncovered
    incoming link would have been covered during ``K`` quiet slots with
    probability ``1 − (1 − q)^K``; solve for ``K``.
    """
    if not 0.0 < local_epsilon < 1.0:
        raise ConfigurationError(
            f"local_epsilon must be in (0, 1), got {local_epsilon}"
        )
    q = slot_coverage_alg3(s, delta_est, rho)
    return math.ceil(math.log(local_epsilon) / math.log(1.0 - q))


class _QuiescenceTracker:
    """Shared stop logic for the sync and async wrappers."""

    def __init__(self, quiet_threshold: int) -> None:
        if quiet_threshold < 1:
            raise ConfigurationError(
                f"quiet_threshold must be >= 1, got {quiet_threshold}"
            )
        self.quiet_threshold = quiet_threshold
        self.last_progress: float = -1.0
        self.terminated_at: Optional[float] = None

    def note_progress(self, at: float) -> None:
        if self.terminated_at is None and at > self.last_progress:
            self.last_progress = at

    def check(self, now: float) -> bool:
        """Update and return whether the node is terminated at ``now``.

        The node stops once it has sat through ``quiet_threshold`` full
        decisions after its last progress (progress at slot ``t`` keeps
        slots ``t+1 .. t+threshold`` active; slot ``t+threshold+1`` stops).
        """
        if (
            self.terminated_at is None
            and now - self.last_progress > self.quiet_threshold
        ):
            self.terminated_at = now
        return self.terminated_at is not None


class SelfTerminatingProtocol(SynchronousProtocol):
    """Wrap a synchronous protocol with the quiescence stop rule.

    Args:
        inner: The wrapped discovery protocol (it keeps running its own
            schedule until the wrapper terminates it).
        quiet_threshold: Consecutive no-new-neighbor local slots before
            stopping.
        policy: What to do after stopping (sleep or beacon).
    """

    def __init__(
        self,
        inner: SynchronousProtocol,
        quiet_threshold: int,
        policy: TerminationPolicy = TerminationPolicy.SLEEP,
    ) -> None:
        # Deliberately no super().__init__: all state delegates to inner.
        self._inner = inner
        self._policy = policy
        self._tracker = _QuiescenceTracker(quiet_threshold)

    # ---- delegated protocol surface ----------------------------------

    @property
    def node_id(self) -> int:
        return self._inner.node_id

    @property
    def channels(self):
        return self._inner.channels

    @property
    def channel_count(self) -> int:
        return self._inner.channel_count

    @property
    def neighbor_table(self) -> NeighborTable:
        return self._inner.neighbor_table

    def hello(self) -> HelloMessage:
        return self._inner.hello()

    @property
    def inner(self) -> SynchronousProtocol:
        """The wrapped protocol."""
        return self._inner

    # ---- termination state --------------------------------------------

    @property
    def terminated_at(self) -> Optional[float]:
        """Local slot at which the node stopped, or ``None``."""
        return self._tracker.terminated_at

    @property
    def policy(self) -> TerminationPolicy:
        return self._policy

    # ---- behavior -------------------------------------------------------

    def decide_slot(self, local_slot: int) -> SlotDecision:
        if self._tracker.check(float(local_slot)):
            if self._policy is TerminationPolicy.SLEEP:
                return SlotDecision.quiet()
            decision = self._inner.decide_slot(local_slot)
            if decision.mode is Mode.TRANSMIT:
                return decision
            return SlotDecision.quiet()  # beacon: never listen again
        return self._inner.decide_slot(local_slot)

    def on_receive(
        self,
        message: HelloMessage,
        heard_at: float,
        channel: Optional[int] = None,
    ) -> bool:
        is_new = self._inner.on_receive(message, heard_at, channel)
        if is_new:
            self._tracker.note_progress(heard_at)
        return is_new


class SelfTerminatingAsyncProtocol(AsynchronousProtocol):
    """Frame-based twin of :class:`SelfTerminatingProtocol`."""

    def __init__(
        self,
        inner: AsynchronousProtocol,
        quiet_threshold: int,
        policy: TerminationPolicy = TerminationPolicy.SLEEP,
    ) -> None:
        self._inner = inner
        self._policy = policy
        self._tracker = _QuiescenceTracker(quiet_threshold)

    @property
    def node_id(self) -> int:
        return self._inner.node_id

    @property
    def channels(self):
        return self._inner.channels

    @property
    def channel_count(self) -> int:
        return self._inner.channel_count

    @property
    def neighbor_table(self) -> NeighborTable:
        return self._inner.neighbor_table

    def hello(self) -> HelloMessage:
        return self._inner.hello()

    @property
    def inner(self) -> AsynchronousProtocol:
        return self._inner

    @property
    def terminated_at(self) -> Optional[float]:
        """Local frame index at which the node stopped, or ``None``."""
        return self._tracker.terminated_at

    @property
    def policy(self) -> TerminationPolicy:
        return self._policy

    def decide_frame(self, local_frame: int) -> FrameDecision:
        if self._tracker.check(float(local_frame)):
            if self._policy is TerminationPolicy.SLEEP:
                return FrameDecision(Mode.QUIET, None)
            decision = self._inner.decide_frame(local_frame)
            if decision.mode is Mode.TRANSMIT:
                return decision
            return FrameDecision(Mode.QUIET, None)
        return self._inner.decide_frame(local_frame)

    def on_receive(
        self,
        message: HelloMessage,
        heard_at: float,
        channel: Optional[int] = None,
    ) -> bool:
        is_new = self._inner.on_receive(message, heard_at, channel)
        if is_new:
            self._tracker.note_progress(heard_at)
        return is_new
