"""Slot-phase profiler for the vectorized engines.

Per-slot work in :class:`~repro.sim.fast_slotted.FastSlottedSimulator`
and :class:`~repro.sim.batched.BatchedSlottedSimulator` decomposes into
a handful of phases — schedule evaluation, RNG draws, channel
pick/gather, the sparse reception scatter, delivery/coverage updates,
result building. :class:`SlotProfiler` accumulates wall-clock seconds
and lap counts per phase so ``benchmarks/bench_slot_profile.py`` (and
anyone chasing a regression) can see *where* a slot's time goes instead
of guessing from totals.

Cost model: profiling is strictly opt-in. The engines hold ``None``
instead of a profiler by default and guard every phase mark with an
``is not None`` check, so the disabled path adds no timer reads and no
attribute traffic to the hot loop. An enabled profiler never touches
RNG streams or results — timings are observational, so profiled runs
stay byte-identical to unprofiled ones (the engines' determinism
contract is unaffected).

This module is the **only** place in ``repro.sim`` allowed to read the
host clock: timings here are a perf metric *about* the simulation, they
never feed simulated time or archived results (which is exactly what
the D104 lint rule protects). Hence the targeted pragmas below.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

__all__ = ["PHASES", "SlotProfiler"]

#: Phase names the engines mark, in hot-loop order. Engines may skip
#: phases on early-exit slots; the profiler accepts any label but the
#: benchmark reports these in this order.
PHASES: Tuple[str, ...] = (
    "schedule",
    "rng",
    "channel",
    "reception",
    "delivery",
    "result",
)


class SlotProfiler:
    """Accumulates per-phase wall-clock seconds across slots.

    Usage inside an engine loop::

        t0 = prof.start()
        ...schedule work...
        t0 = prof.lap("schedule", t0)
        ...rng work...
        t0 = prof.lap("rng", t0)

    :meth:`lap` charges the elapsed time since ``t0`` to the phase and
    returns the new timestamp, so consecutive phases chain without
    double-counting. All methods are allocation-free after the first
    lap of each phase.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._laps: Dict[str, int] = {}

    def start(self) -> float:
        """A timestamp to chain :meth:`lap` calls from."""
        return time.perf_counter()  # lint: disable=D104

    def lap(self, phase: str, t0: float) -> float:
        """Charge ``now − t0`` to ``phase``; return ``now``."""
        t1 = time.perf_counter()  # lint: disable=D104
        self._seconds[phase] = self._seconds.get(phase, 0.0) + (t1 - t0)
        self._laps[phase] = self._laps.get(phase, 0) + 1
        return t1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds", "laps", "share"}}``, known phases first.

        ``share`` is the phase's fraction of the total accumulated time
        (0.0 when nothing was recorded yet).
        """
        total = sum(self._seconds.values())
        ordered: List[str] = [p for p in PHASES if p in self._seconds]
        ordered += sorted(set(self._seconds) - set(PHASES))
        return {
            phase: {
                "seconds": self._seconds[phase],
                "laps": float(self._laps[phase]),
                "share": self._seconds[phase] / total if total > 0 else 0.0,
            }
            for phase in ordered
        }
