"""Reference synchronous slotted engine (paper §II, synchronous model).

Execution is a sequence of globally synchronized time slots. Each slot,
every started node declares a :class:`~repro.core.base.SlotDecision`
(transmit / listen / quiet on one channel); the engine then resolves
receptions with the paper's collision semantics:

* a listener ``u`` tuned to channel ``c`` hears a *clear* hello iff
  exactly one of the nodes it can hear transmitted on ``c`` that slot;
* two or more such transmissions collide at ``u`` — it hears only noise
  and (lacking collision detection) learns nothing;
* a transmitting node receives nothing (half-duplex);
* transmissions on other channels are invisible to ``u``.

The engine supports per-node *start offsets* (variable start times,
§III-B): a node is quiet until its start slot, and its protocol
experiences local slot ``t − offset``.

An optional per-delivery erasure probability models unreliable channels
(paper §V(b) extension): even a collision-free hello is lost with
probability ``erasure_prob``, independently per (transmission, receiver).

This implementation favors clarity over speed; the numpy engine in
:mod:`repro.sim.fast_slotted` is the high-throughput twin and a test
pins their statistical agreement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.base import Mode, SlotDecision, SynchronousProtocol
from ..core.messages import HelloMessage
from ..exceptions import ConfigurationError, SimulationError
from ..net.network import M2HeWNetwork
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition
from .trace import ExecutionTrace, SlotRecord

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan

__all__ = ["ProtocolFactory", "SlottedSimulator"]

ProtocolFactory = Callable[[int, frozenset, np.random.Generator], SynchronousProtocol]


class SlottedSimulator:
    """Object-per-node synchronous discovery simulator.

    Args:
        network: The M2HeW network instance.
        protocol_factory: ``(node_id, channels, rng) -> protocol``.
        rng_factory: Source of per-node and engine random streams.
        start_offsets: Global slot at which each node starts; default 0
            for all (identical start times). Missing nodes default to 0.
        erasure_prob: Per-delivery loss probability (0 = reliable).
        trace: Optional :class:`ExecutionTrace` to record slot decisions.
        faults: Optional :class:`~repro.faults.plan.FaultPlan`; a
            trivial plan compiles away and leaves the run bit-identical
            to a fault-free one.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        protocol_factory: ProtocolFactory,
        rng_factory: RngFactory,
        start_offsets: Optional[Mapping[int, int]] = None,
        erasure_prob: float = 0.0,
        trace: Optional[ExecutionTrace] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if not 0.0 <= erasure_prob < 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1), got {erasure_prob}"
            )
        self._network = network
        self._rng_factory = rng_factory
        self._erasure_prob = erasure_prob
        self._erasure_rng = rng_factory.stream("erasure")
        self._trace = trace
        self._faults = None
        if faults is not None:
            from ..faults.runtime import compile_plan

            self._faults = compile_plan(
                faults, network, rng_factory, time_unit="slots"
            )

        offsets = dict(start_offsets or {})
        self._offsets: Dict[int, int] = {}
        for nid in network.node_ids:
            offset = int(offsets.get(nid, 0))
            if offset < 0:
                raise ConfigurationError(
                    f"start offset of node {nid} must be >= 0, got {offset}"
                )
            if self._faults is not None:
                offset = max(offset, self._faults.join_offset(nid))
            self._offsets[nid] = offset

        self._protocols: Dict[int, SynchronousProtocol] = {}
        self._hellos: Dict[int, HelloMessage] = {}
        for nid in network.node_ids:
            protocol = protocol_factory(
                nid, network.channels_of(nid), rng_factory.node_stream(nid)
            )
            if protocol.node_id != nid:
                raise SimulationError(
                    f"protocol factory returned node id {protocol.node_id} "
                    f"for node {nid}"
                )
            self._protocols[nid] = protocol
            self._hellos[nid] = protocol.hello()

        # Per-channel hearing sets, precomputed for the hot loop. Only
        # transmissions from these nodes can be received by — or collide
        # at — the keyed node on the keyed channel (this also carries the
        # channel-dependent propagation extension for free).
        self._hears_on: Dict[int, Dict[int, frozenset]] = {
            nid: {
                c: network.hears_on(nid, c)
                for c in network.channels_of(nid)
            }
            for nid in network.node_ids
        }
        # Radio-activity counters (slots per mode), for energy accounting.
        self._activity: Dict[int, Dict[str, int]] = {
            nid: {"tx": 0, "rx": 0, "quiet": 0} for nid in network.node_ids
        }
        # Contention counters: listening slots that carried a collision
        # (>= 2 audible transmissions) or a clear hello, per receiver.
        # Note the receiver itself cannot tell collisions from silence.
        self._collisions: Dict[int, int] = {nid: 0 for nid in network.node_ids}
        self._clear_receptions: Dict[int, int] = {
            nid: 0 for nid in network.node_ids
        }

    @property
    def protocols(self) -> Dict[int, SynchronousProtocol]:
        """The per-node protocol instances (read-only use)."""
        return dict(self._protocols)

    def run(self, stopping: StoppingCondition) -> DiscoveryResult:
        """Execute slots until the stopping condition fires."""
        budget = stopping.require_slot_budget()
        coverage: Dict[Tuple[int, int], Optional[float]] = {
            link.key: None for link in self._network.links()
        }
        uncovered = sum(1 for t in coverage.values() if t is None)

        slots_executed = 0
        for t in range(budget):
            if stopping.stop_on_full_coverage and uncovered == 0:
                break
            uncovered -= self._run_slot(t, coverage)
            slots_executed = t + 1

        completed = all(t is not None for t in coverage.values())
        return DiscoveryResult(
            time_unit="slots",
            coverage=coverage,
            horizon=float(slots_executed),
            completed=completed,
            neighbor_tables={
                nid: proto.neighbor_table.as_dict()
                for nid, proto in self._protocols.items()
            },
            start_times={nid: float(off) for nid, off in self._offsets.items()},
            network_params=self._network.parameter_summary(),
            metadata=self._metadata(),
        )

    def _metadata(self) -> Dict[str, object]:
        metadata: Dict[str, object] = {
            "engine": "slotted-reference",
            "erasure_prob": self._erasure_prob,
            "radio_activity": {
                nid: dict(modes) for nid, modes in self._activity.items()
            },
            "collisions": dict(self._collisions),
            "clear_receptions": dict(self._clear_receptions),
        }
        if self._faults is not None:
            metadata["faults"] = self._faults.describe()
        return metadata

    def _run_slot(
        self,
        t: int,
        coverage: Dict[Tuple[int, int], Optional[float]],
    ) -> int:
        """Execute global slot ``t``; return how many links became covered."""
        transmitters_on: Dict[int, List[int]] = {}
        listeners: List[Tuple[int, int]] = []
        faults = self._faults
        if faults is not None:
            faults.begin_slot(t)

        for nid, protocol in self._protocols.items():
            offset = self._offsets[nid]
            if t < offset:
                continue
            if faults is not None and not faults.alive(nid, t):
                continue  # crash-stop: silent and frozen from here on
            decision = protocol.decide_slot(t - offset)
            if self._trace is not None:
                self._trace.add_slot(
                    SlotRecord(
                        node_id=nid,
                        global_slot=t,
                        local_slot=t - offset,
                        mode=decision.mode,
                        channel=decision.channel,
                    )
                )
            if decision.mode is Mode.TRANSMIT:
                assert decision.channel is not None
                if decision.channel not in protocol.channels:
                    raise SimulationError(
                        f"node {nid} transmitted on unavailable channel "
                        f"{decision.channel}"
                    )
                self._activity[nid]["tx"] += 1
                if faults is None or not faults.blocked(nid, decision.channel):
                    # A blocked transmitter senses the occupied channel
                    # and defers: the slot is spent, nothing goes on air.
                    transmitters_on.setdefault(decision.channel, []).append(nid)
            elif decision.mode is Mode.LISTEN:
                assert decision.channel is not None
                self._activity[nid]["rx"] += 1
                if faults is None or not faults.blocked(nid, decision.channel):
                    # A blocked listener hears only the blocker's signal.
                    listeners.append((nid, decision.channel))
            else:
                self._activity[nid]["quiet"] += 1

        newly_covered = 0
        for u, c in listeners:
            audible = self._hears_on[u].get(c, frozenset())
            senders = [v for v in transmitters_on.get(c, ()) if v in audible]
            if len(senders) != 1:
                if len(senders) > 1:
                    self._collisions[u] += 1
                continue  # silence or collision; u cannot tell which
            v = senders[0]
            self._clear_receptions[u] += 1
            if self._erasure_prob > 0.0 and self._erasure_rng.random() < self._erasure_prob:
                continue
            if (
                faults is not None
                and faults.has_loss
                and not faults.keep_delivery(v, u, float(t), self._erasure_rng)
            ):
                continue
            local_slot = t - self._offsets[u]
            self._protocols[u].on_receive(self._hellos[v], float(local_slot), c)
            if coverage.get((v, u)) is None:
                if (v, u) not in coverage:
                    raise SimulationError(
                        f"delivery on untracked link ({v}, {u}); "
                        "network link set is inconsistent"
                    )
                coverage[(v, u)] = float(t)
                newly_covered += 1
        return newly_covered
