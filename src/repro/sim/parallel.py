"""Process-pool execution backend for seeded trial fan-out.

Monte-Carlo campaigns are embarrassingly parallel: every trial is fully
determined by ``(network, protocol, runner_params, trial seed)`` and the
seeds already derive independently via
:func:`~repro.sim.rng.derive_trial_seed`. This module exploits that —
trials are dispatched to worker processes **by index** in fixed-size
chunks and reassembled **in order**, so the list of results (and hence
every archived JSON byte) is identical for 1 worker and for 8.

Determinism contract:

* seeds are derived in the parent, once, exactly as the serial loop
  derives them, and shipped to workers inside the chunk payload;
* the workload is realized once per experiment and shipped through
  :mod:`repro.net.serialization` (bit-faithful round trip), never
  re-generated per trial;
* workers execute :func:`~repro.sim.runner.run_experiment_trial` — the
  same code path the serial executor uses.

Failure surface: a worker exception (or a crashed worker process, or a
chunk exceeding its timeout budget) is raised in the parent as a typed
:class:`~repro.exceptions.TrialExecutionError` /
:class:`~repro.exceptions.TrialTimeoutError` carrying the experiment
name, the chunk's trial indices and the campaign base seed, so the
failing trial can be replayed in-process (see ``docs/parallel.md``).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep sim decoupled from resilience
    from ..resilience.chaos import ChaosPlan

from ..exceptions import ConfigurationError, TrialExecutionError, TrialTimeoutError
from ..net.network import M2HeWNetwork
from ..net.serialization import network_from_json, network_to_json
from .results import DiscoveryResult
from .rng import derive_trial_seed
from .runner import (
    run_experiment_grid_batched,
    run_experiment_trial,
    run_experiment_trials_batched,
)

__all__ = [
    "BACKENDS",
    "ParallelPlan",
    "chunk_indices",
    "default_chunk_size",
    "pool_supported",
    "preferred_start_method",
    "resolve_plan",
    "run_grid_spec_trials",
    "run_spec_trials",
]

#: Accepted ``backend`` values: ``auto`` picks ``process`` when more
#: than one worker is requested and the platform can host a pool,
#: degrading to ``serial`` otherwise. ``vectorized`` routes each
#: dispatch unit through the trial-batched engine
#: (:func:`~repro.sim.runner.run_experiment_trials_batched`) — with
#: workers the pool's chunks *are* the batches — falling back to the
#: serial per-trial loop for campaigns the batched engine cannot take.
BACKENDS = ("auto", "serial", "process", "vectorized")

#: Default dispatch granularity: enough chunks that the pool stays busy
#: (4 per worker) without shipping one pickle per cheap trial.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ParallelPlan:
    """A resolved execution plan for one experiment's trials.

    Attributes:
        backend: ``"serial"`` or ``"process"`` (never ``"auto"``).
        max_workers: Worker processes (1 for the serial backend).
        chunk_size: Trials shipped per dispatch unit.
        start_method: Multiprocessing start method for the pool, or
            ``None`` for the serial backend.
        vectorized: Execute each dispatch unit through the trial-batched
            engine (its chunk becomes one batch) instead of a per-trial
            loop. Output is byte-identical either way.
    """

    backend: str
    max_workers: int
    chunk_size: int
    start_method: Optional[str]
    vectorized: bool = False


def pool_supported() -> bool:
    """Whether this platform can host a process pool at all."""
    try:
        return len(multiprocessing.get_all_start_methods()) > 0
    except (NotImplementedError, OSError):  # pragma: no cover - exotic hosts
        return False


def preferred_start_method() -> Optional[str]:
    """``fork`` where available (cheap workers), else the platform default.

    Results do not depend on the start method — trials are pure
    functions of their shipped payload — so this is purely a dispatch
    cost choice.
    """
    methods = multiprocessing.get_all_start_methods()
    if not methods:  # pragma: no cover - exotic hosts
        return None
    return "fork" if "fork" in methods else methods[0]


def default_chunk_size(trials: int, max_workers: int) -> int:
    """Chunk size amortizing per-dispatch pickling over cheap trials."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    return max(1, -(-trials // (max_workers * _CHUNKS_PER_WORKER)))


def resolve_plan(
    trials: int,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
) -> ParallelPlan:
    """Validate options and resolve the backend actually used.

    Degradation rules: ``max_workers=1`` always runs serially;
    ``backend="auto"`` (and ``"vectorized"``) fall back to serial when
    the platform cannot host a pool; an *explicit* ``backend="process"``
    on such a platform is a
    :class:`~repro.exceptions.ConfigurationError` instead of a silent
    behavior change. ``backend="vectorized"`` keeps its batched
    execution either way — only the pool degrades, never the batching.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")

    vectorized = backend == "vectorized"
    use_pool = backend == "process" or (
        backend in ("auto", "vectorized") and max_workers > 1
    )
    if use_pool and not pool_supported():
        if backend == "process":
            raise ConfigurationError(
                "backend='process' requested but this platform cannot "
                "host a multiprocessing pool; use backend='auto'"
            )
        use_pool = False
    if max_workers == 1:
        use_pool = False

    if not use_pool:
        return ParallelPlan(
            backend="serial",
            max_workers=1,
            chunk_size=chunk_size or trials,
            start_method=None,
            vectorized=vectorized,
        )
    method = start_method or preferred_start_method()
    return ParallelPlan(
        backend="process",
        max_workers=max_workers,
        chunk_size=chunk_size or default_chunk_size(trials, max_workers),
        start_method=method,
        vectorized=vectorized,
    )


# ----------------------------------------------------------------------
# chunked dispatch
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ChunkPayload:
    """Everything a worker needs to run one chunk of trials.

    Self-contained and picklable under any start method: the workload
    travels as its compact JSON form and the per-trial seeds as
    :class:`numpy.random.SeedSequence` objects derived in the parent.
    """

    network_json: str
    protocol: str
    runner_params: Dict[str, Any]
    trial_indices: Tuple[int, ...]
    seeds: Tuple[np.random.SeedSequence, ...]
    vectorized: bool = False
    #: Chaos injection (supervised campaigns only): the plan and the
    #: chunk's zero-based attempt number travel with the payload so a
    #: "fail the first k attempts" event reproduces across processes.
    chaos: Optional["ChaosPlan"] = None
    attempt: int = 0


def chunk_indices(trials: int, chunk_size: int) -> List[Tuple[int, ...]]:
    """Contiguous index chunks ``[0..trials)`` of at most ``chunk_size``."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        tuple(range(lo, min(lo + chunk_size, trials)))
        for lo in range(0, trials, chunk_size)
    ]


def _run_chunk(payload: _ChunkPayload) -> List[DiscoveryResult]:
    """Worker entry point: rebuild the workload, run the chunk in order."""
    if payload.chaos is not None:
        # Raises or kills the worker when the plan covers this attempt;
        # no-op otherwise. The plan object travels inside the payload so
        # this module never imports the resilience package.
        payload.chaos.strike(payload.trial_indices, payload.attempt)
    network = network_from_json(payload.network_json)
    if payload.vectorized:
        return run_experiment_trials_batched(
            network,
            payload.protocol,
            payload.seeds,
            runner_params=payload.runner_params,
        )
    return [
        run_experiment_trial(
            network,
            payload.protocol,
            seed=seed,
            runner_params=payload.runner_params,
        )
        for seed in payload.seeds
    ]


def _wrap_failure(
    exc: BaseException,
    *,
    kind: str,
    experiment: Optional[str],
    indices: Sequence[int],
    base_seed: Optional[int],
    timed_out: bool = False,
) -> TrialExecutionError:
    label = experiment or "<unnamed>"
    cls = TrialTimeoutError if timed_out else TrialExecutionError
    err = cls(
        f"experiment {label!r}: trial chunk {tuple(indices)} {kind} "
        f"({type(exc).__name__}: {exc}); replay with "
        f"derive_trial_seed({base_seed!r}, <trial>)",
        experiment=experiment,
        trial_indices=indices,
        base_seed=base_seed,
    )
    err.__cause__ = exc
    return err


def _collect_in_order(
    pending: Sequence[Tuple[Tuple[int, ...], Any]],
    *,
    trial_timeout: Optional[float],
    experiment: Optional[str],
    base_seed: Optional[int],
    on_progress: Optional[Callable[[int, int], None]] = None,
    total: int = 0,
) -> List[DiscoveryResult]:
    """Await ``(indices, future)`` pairs in dispatch order.

    Each chunk's wall-clock budget is ``trial_timeout × len(chunk)``,
    counted from when we start waiting on it; chunks complete out of
    order inside the pool but results are reassembled by index here.
    ``on_progress`` (if given) fires after each chunk is *collected* —
    i.e. in dispatch order, never in completion order — with
    ``(trials collected so far, total)``. Factored out of
    :func:`run_spec_trials` so the timeout and crash paths are
    unit-testable with stub futures on any platform.
    """
    results: List[DiscoveryResult] = []
    for indices, future in pending:
        budget = None if trial_timeout is None else trial_timeout * len(indices)
        try:
            results.extend(future.result(timeout=budget))
        except concurrent.futures.TimeoutError as exc:
            raise _wrap_failure(
                exc,
                kind="timed out",
                experiment=experiment,
                indices=indices,
                base_seed=base_seed,
                timed_out=True,
            ) from exc
        except TrialExecutionError:
            raise
        except Exception as exc:
            raise _wrap_failure(
                exc,
                kind="failed",
                experiment=experiment,
                indices=indices,
                base_seed=base_seed,
            ) from exc
        if on_progress is not None:
            on_progress(len(results), total)
    return results


def _merge_batch_size(
    backend: str, chunk_size: Optional[int], batch_size: Optional[int]
) -> Optional[int]:
    """Fold ``batch_size`` into ``chunk_size`` (vectorized chunks ARE batches)."""
    if batch_size is None:
        return chunk_size
    if backend != "vectorized":
        raise ConfigurationError(
            "batch_size is only meaningful with backend='vectorized'"
        )
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if chunk_size is not None and chunk_size != batch_size:
        raise ConfigurationError(
            "pass either chunk_size or batch_size, not conflicting "
            "values: with backend='vectorized' chunks are batches"
        )
    return batch_size


def run_spec_trials(
    network: M2HeWNetwork,
    protocol: str,
    *,
    trials: int,
    base_seed: Optional[int] = 0,
    runner_params: Optional[Mapping[str, Any]] = None,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    experiment: Optional[str] = None,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> List[DiscoveryResult]:
    """Run ``trials`` seeded trials, optionally fanned out over processes.

    Trial ``t`` always uses ``derive_trial_seed(base_seed, t)`` and the
    returned list is always ordered by trial index, so the output is
    bitwise independent of ``max_workers``, ``backend``, ``chunk_size``
    and ``batch_size``.

    Args:
        network: The realized workload (shipped to workers via
            :mod:`repro.net.serialization`, never re-generated).
        protocol: Any :data:`~repro.sim.runner.SYNC_PROTOCOLS` name or
            ``algorithm4``.
        trials: Number of trials.
        base_seed: Campaign root seed (``None`` draws OS entropy in the
            parent — still worker-count invariant, but not replayable).
        runner_params: Extra keyword arguments for the runners.
        max_workers: Worker processes; 1 means serial.
        backend: One of :data:`BACKENDS`.
        chunk_size: Trials per dispatch unit (default: auto).
        batch_size: Trials per vectorized batch (default: all trials
            when serial, the chunk size when pooled — chunks *are*
            batches). Only meaningful with ``backend="vectorized"``.
        trial_timeout: Per-trial wall-clock budget in seconds; a chunk
            gets ``trial_timeout × len(chunk)``. Exceeding it aborts
            the campaign with :class:`TrialTimeoutError`.
        experiment: Label used in error messages.
        on_progress: Optional observer called with ``(completed,
            trials)`` as execution advances — per trial on the serial
            path, per batch on the vectorized path, per collected chunk
            on the pooled path (always in dispatch order). Purely
            observational: it sees results only after they exist, so it
            cannot perturb archived bytes. An exception it raises aborts
            the campaign (callers use this for cooperative
            cancellation).

    Raises:
        TrialExecutionError: A trial raised in a worker (or the worker
            process died); carries the trial indices and base seed.
        TrialTimeoutError: A chunk exceeded its budget.
    """
    chunk_size = _merge_batch_size(backend, chunk_size, batch_size)
    plan = resolve_plan(
        trials, max_workers=max_workers, backend=backend, chunk_size=chunk_size
    )
    params: Dict[str, Any] = dict(runner_params or {})
    seeds = [derive_trial_seed(base_seed, t) for t in range(trials)]

    if plan.backend == "serial":
        if plan.vectorized:
            results_v: List[DiscoveryResult] = []
            for indices in chunk_indices(trials, plan.chunk_size):
                try:
                    results_v.extend(
                        run_experiment_trials_batched(
                            network,
                            protocol,
                            [seeds[i] for i in indices],
                            runner_params=params,
                        )
                    )
                except TrialExecutionError:
                    # Already typed with replay info; re-wrapping would
                    # bury the original trial indices one level deep.
                    raise
                except Exception as exc:
                    raise _wrap_failure(
                        exc,
                        kind="failed",
                        experiment=experiment,
                        indices=indices,
                        base_seed=base_seed,
                    ) from exc
                if on_progress is not None:
                    on_progress(len(results_v), trials)
            return results_v
        results: List[DiscoveryResult] = []
        for t in range(trials):
            try:
                results.append(
                    run_experiment_trial(
                        network, protocol, seed=seeds[t], runner_params=params
                    )
                )
            except TrialExecutionError:
                raise
            except Exception as exc:
                raise _wrap_failure(
                    exc,
                    kind="failed",
                    experiment=experiment,
                    indices=(t,),
                    base_seed=base_seed,
                ) from exc
            if on_progress is not None:
                on_progress(t + 1, trials)
        return results

    network_json = network_to_json(network)
    chunks = chunk_indices(trials, plan.chunk_size)
    context = multiprocessing.get_context(plan.start_method)
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(plan.max_workers, len(chunks)), mp_context=context
    )
    try:
        pending = [
            (
                indices,
                executor.submit(
                    _run_chunk,
                    _ChunkPayload(
                        network_json=network_json,
                        protocol=protocol,
                        runner_params=params,
                        trial_indices=indices,
                        seeds=tuple(seeds[i] for i in indices),
                        vectorized=plan.vectorized,
                    ),
                ),
            )
            for indices in chunks
        ]
        return _collect_in_order(
            pending,
            trial_timeout=trial_timeout,
            experiment=experiment,
            base_seed=base_seed,
            on_progress=on_progress,
            total=trials,
        )
    finally:
        # A timed-out worker cannot be interrupted cooperatively; drop
        # the whole pool so stragglers do not outlive the campaign.
        executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# grid dispatch: many spec points through one kernel pass
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _GridChunkPayload:
    """One trial-index chunk of a multi-spec grid campaign.

    Like :class:`_ChunkPayload`, but carrying *every* spec point of the
    grid: the worker fuses the chunk's trials of all entries into one
    (or few) :class:`~repro.sim.batched.GridBatchedSimulator` passes.
    ``entries[j]`` is ``(protocol, trials, runner_params)``; only trial
    indices below an entry's own count participate in the chunk.
    """

    network_json: str
    entries: Tuple[Tuple[str, int, Dict[str, Any]], ...]
    trial_indices: Tuple[int, ...]
    seeds: Tuple[np.random.SeedSequence, ...]


def _run_grid_chunk(
    payload: _GridChunkPayload,
) -> List[List[DiscoveryResult]]:
    """Worker entry point: one grid pass over the chunk's trial slice."""
    network = network_from_json(payload.network_json)
    lo = payload.trial_indices[0]
    return run_experiment_grid_batched(
        network,
        [
            (
                protocol,
                # Entry j's own seed factories for the chunk's trials it
                # actually has; trial t always maps to seeds[t - lo].
                [
                    payload.seeds[t - lo]
                    for t in payload.trial_indices
                    if t < trials
                ],
                params,
            )
            for protocol, trials, params in payload.entries
        ],
    )


def run_grid_spec_trials(
    network: M2HeWNetwork,
    entries: Sequence[Tuple[str, int, Optional[Mapping[str, Any]]]],
    *,
    base_seed: Optional[int] = 0,
    max_workers: int = 1,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    experiment: Optional[str] = None,
    on_progress: Optional[Callable[[int, int, int], None]] = None,
) -> List[List[DiscoveryResult]]:
    """Run several spec points' seeded trials as fused grid batches.

    ``entries[j]`` is ``(protocol, trials, runner_params)`` — one spec
    point on the shared ``network``. Trial ``t`` of *every* entry uses
    ``derive_trial_seed(base_seed, t)``, exactly like per-spec
    campaigns, and results come back ordered by trial index per entry —
    so output is bitwise identical to running each entry through
    :func:`run_spec_trials` separately, for any worker count, chunk
    size or grid composition (the invariance the differential tests
    pin across G and B).

    The trial axis is chunked jointly: each chunk carries the
    participating trials of all entries, and a worker fuses them into
    one kernel pass (see
    :func:`~repro.sim.runner.run_experiment_grid_batched` for the
    eligibility and stopping-condition grouping rules). ``on_progress``
    (if given) fires per collected chunk, in dispatch order, with
    ``(entry index, trials completed, entry trials)`` for each entry
    that advanced.

    Raises:
        TrialExecutionError: A trial raised in a worker (or the worker
            process died); carries the chunk's trial indices.
        TrialTimeoutError: A chunk exceeded its wall-clock budget.
    """
    if not entries:
        raise ConfigurationError("grid needs at least one entry")
    normalized: List[Tuple[str, int, Dict[str, Any]]] = []
    for protocol, trials, runner_params in entries:
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        normalized.append((protocol, int(trials), dict(runner_params or {})))
    max_trials = max(trials for _, trials, _ in normalized)
    chunk_size = _merge_batch_size("vectorized", chunk_size, batch_size)
    plan = resolve_plan(
        max_trials,
        max_workers=max_workers,
        backend="vectorized",
        chunk_size=chunk_size,
    )
    seeds = [derive_trial_seed(base_seed, t) for t in range(max_trials)]
    chunks = chunk_indices(max_trials, plan.chunk_size)
    collected: List[List[DiscoveryResult]] = [[] for _ in normalized]

    def _absorb(chunk_results: List[List[DiscoveryResult]]) -> None:
        for j, group in enumerate(chunk_results):
            collected[j].extend(group)
            if on_progress is not None and group:
                on_progress(j, len(collected[j]), normalized[j][1])

    if plan.backend == "serial":
        for indices in chunks:
            try:
                _absorb(
                    run_experiment_grid_batched(
                        network,
                        [
                            (
                                protocol,
                                [seeds[t] for t in indices if t < trials],
                                params,
                            )
                            for protocol, trials, params in normalized
                        ],
                    )
                )
            except TrialExecutionError:
                raise
            except Exception as exc:
                raise _wrap_failure(
                    exc,
                    kind="failed",
                    experiment=experiment,
                    indices=indices,
                    base_seed=base_seed,
                ) from exc
        return collected

    network_json = network_to_json(network)
    context = multiprocessing.get_context(plan.start_method)
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(plan.max_workers, len(chunks)), mp_context=context
    )
    try:
        pending = [
            (
                indices,
                executor.submit(
                    _run_grid_chunk,
                    _GridChunkPayload(
                        network_json=network_json,
                        entries=tuple(normalized),
                        trial_indices=indices,
                        seeds=tuple(seeds[i] for i in indices),
                    ),
                ),
            )
            for indices in chunks
        ]
        for indices, future in pending:
            # Budget covers every entry's participating trials.
            rows = sum(
                1
                for _, trials, _ in normalized
                for t in indices
                if t < trials
            )
            budget = None if trial_timeout is None else trial_timeout * rows
            try:
                _absorb(future.result(timeout=budget))
            except concurrent.futures.TimeoutError as exc:
                raise _wrap_failure(
                    exc,
                    kind="timed out",
                    experiment=experiment,
                    indices=indices,
                    base_seed=base_seed,
                    timed_out=True,
                ) from exc
            except TrialExecutionError:
                raise
            except Exception as exc:
                raise _wrap_failure(
                    exc,
                    kind="failed",
                    experiment=experiment,
                    indices=indices,
                    base_seed=base_seed,
                ) from exc
        return collected
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
