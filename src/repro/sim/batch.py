"""Declarative experiment batches.

A release-quality reproduction needs a way to describe a whole campaign
— several (workload, protocol, parameters) combinations, each with
seeded trials — and archive everything it produced. An
:class:`ExperimentSpec` names one combination; :func:`run_batch`
executes the campaign and (optionally) writes one JSON file per
experiment plus a manifest, so a results directory is self-describing
and every number in a paper table can be traced to raw trial files.

Archives are written in format 2 (:data:`ARCHIVE_SCHEMA_VERSION`):
every file lands atomically (tmp + fsync + rename), every payload
carries a ``schema_version`` and the manifest records a SHA-256 per
file — ``m2hew verify-archive`` checks all of it.

Campaigns can run *supervised* (any of ``retry``, ``checkpoint_dir`` or
``chaos`` set): failing trial chunks are retried with seeded backoff,
trials that exhaust their budget are quarantined into the manifest with
replay seeds instead of aborting the campaign, and completed trials are
journaled so an interrupted campaign resumes where it stopped. The
archived bytes of a supervised campaign that recovered are identical to
those of one that ran clean — see :mod:`repro.resilience`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from ..analysis.stats import SampleSummary, summarize
from ..exceptions import ConfigurationError
from ..resilience.atomic import atomic_write_text, sha256_of_text
from ..resilience.chaos import ChaosPlan
from ..resilience.checkpoint import TrialJournal, campaign_fingerprint
from ..resilience.policy import RetryPolicy
from ..resilience.verify import ARCHIVE_SCHEMA_VERSION
from ..workloads.generator import WorkloadConfig, generate_network
from ..core.registry import ASYNCHRONOUS_PROTOCOLS
from .parallel import run_grid_spec_trials, run_spec_trials
from .results import DiscoveryResult
from .runner import SYNC_PROTOCOLS, grid_batchable

if TYPE_CHECKING:  # import cycle: resilience.supervisor dispatches via sim
    from ..resilience.supervisor import QuarantinedTrial, SupervisorEvent

__all__ = [
    "ARCHIVE_SCHEMA_VERSION",
    "ExperimentSpec",
    "BatchOutcome",
    "SYNC_PROTOCOLS",
    "batch_fingerprint",
    "run_batch",
    "spec_fingerprint",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of a batch.

    Attributes:
        name: Unique label (also the archive file stem).
        workload: Network recipe.
        protocol: Any registered name — :data:`SYNC_PROTOCOLS`
            (synchronous, incl. rivals and baselines) or ``algorithm4``
            (asynchronous).
        trials: Seeded trials to run.
        network_seed: Seed for realizing the workload (one instance per
            experiment; per-trial randomness varies only the protocol).
        runner_params: Extra keyword arguments for
            :func:`~repro.sim.runner.run_synchronous` /
            :func:`~repro.sim.runner.run_asynchronous` (budgets,
            ``delta_est``, drift, …).
    """

    name: str
    workload: WorkloadConfig
    protocol: str
    trials: int = 5
    network_seed: int = 0
    runner_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(
                f"experiment name must be a non-empty file stem, got {self.name!r}"
            )
        if self.protocol not in SYNC_PROTOCOLS + ASYNCHRONOUS_PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r} for batch experiments"
            )
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")


@dataclass
class BatchOutcome:
    """All trials of one experiment, with a completion-time summary.

    ``results`` holds one entry per *completed* trial; a supervised
    campaign with quarantined trials lists them in ``quarantined`` (with
    replay coordinates) instead. Each result's ``metadata["trial"]``
    carries its true trial index, so gaps are attributable.
    """

    spec: ExperimentSpec
    results: List[DiscoveryResult]
    network_params: Dict[str, float]
    completion: Optional[SampleSummary]
    completed_fraction: float
    quarantined: List["QuarantinedTrial"] = field(default_factory=list)
    events: List["SupervisorEvent"] = field(default_factory=list)
    #: Trials restored from a checkpoint journal rather than executed.
    restored: int = 0

    def as_row(self) -> Dict[str, Any]:
        """Row form for table rendering."""
        row: Dict[str, Any] = {
            "experiment": self.spec.name,
            "protocol": self.spec.protocol,
            "trials": len(self.results),
            "completed": round(self.completed_fraction, 3),
        }
        if self.completion is not None:
            row["mean_time"] = round(self.completion.mean, 2)
            row["p90_time"] = round(self.completion.p90, 2)
        return row


def spec_fingerprint(spec: ExperimentSpec, base_seed: Optional[int]) -> str:
    """Content fingerprint of one experiment's *inputs*.

    Hashes everything that determines the experiment's archived bytes —
    the workload recipe, network seed, protocol, trial count, base seed
    and the archived form of the runner params — and nothing about *how*
    it executes (workers, backend, chunking, supervision), which by the
    byte-identity contract cannot influence the output. A checkpoint
    journal must match this fingerprint to resume, and the campaign
    service keys its dedup store on :func:`batch_fingerprint`, which is
    built from these.
    """
    return campaign_fingerprint(
        {
            "base_seed": base_seed,
            "name": spec.name,
            "network_seed": spec.network_seed,
            "protocol": spec.protocol,
            "runner_params": _archived_runner_params(spec.runner_params),
            "trials": spec.trials,
            "workload": spec.workload.describe(),
        }
    )


def batch_fingerprint(
    specs: Sequence[ExperimentSpec], base_seed: Optional[int]
) -> str:
    """Content fingerprint of a whole campaign (``run_batch`` inputs).

    Per-experiment fingerprints are combined *in spec order* because the
    manifest lists experiments in that order — reordering the same specs
    produces a different archive, so it must produce a different
    fingerprint. Two campaigns with equal fingerprints archive
    byte-identical directories; any change to a parameter, seed, trial
    count, fault plan or experiment order changes the fingerprint.
    """
    return campaign_fingerprint(
        {
            "base_seed": base_seed,
            "experiments": [
                {"name": spec.name, "fingerprint": spec_fingerprint(spec, base_seed)}
                for spec in specs
            ],
        }
    )


def _run_spec(
    spec: ExperimentSpec,
    base_seed: Optional[int],
    *,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    chaos: Optional[ChaosPlan] = None,
    on_progress: Optional[Callable[[int, int], None]] = None,
    queue_dir: Optional[Union[str, Path]] = None,
    lease: Optional[Any] = None,
) -> BatchOutcome:
    network = generate_network(spec.workload, seed=spec.network_seed)
    supervised = (
        retry is not None
        or checkpoint_dir is not None
        or chaos is not None
        or queue_dir is not None
        or backend == "distributed"
    )

    quarantined: List["QuarantinedTrial"] = []
    events: List["SupervisorEvent"] = []
    restored = 0
    if supervised:
        # Deferred import: repro.sim's eager imports would otherwise
        # race the resilience package's own initialization.
        from ..resilience.supervisor import run_supervised_trials

        journal: Optional[TrialJournal] = None
        if checkpoint_dir is not None:
            journal = TrialJournal.open(
                checkpoint_dir, spec.name, spec_fingerprint(spec, base_seed)
            )
        try:
            outcome = run_supervised_trials(
                network,
                spec.protocol,
                trials=spec.trials,
                base_seed=base_seed,
                runner_params=spec.runner_params,
                max_workers=max_workers,
                backend=backend,
                chunk_size=chunk_size,
                batch_size=batch_size,
                trial_timeout=trial_timeout,
                experiment=spec.name,
                policy=retry,
                journal=journal,
                chaos=chaos,
                on_progress=on_progress,
                queue_dir=None if queue_dir is None else Path(queue_dir),
                lease=lease,
            )
        finally:
            if journal is not None:
                journal.close()
        indexed = outcome.results_in_order()
        quarantined = list(outcome.quarantined)
        events = list(outcome.events)
        restored = outcome.restored
    else:
        trial_results = run_spec_trials(
            network,
            spec.protocol,
            trials=spec.trials,
            base_seed=base_seed,
            runner_params=spec.runner_params,
            max_workers=max_workers,
            backend=backend,
            chunk_size=chunk_size,
            batch_size=batch_size,
            trial_timeout=trial_timeout,
            experiment=spec.name,
            on_progress=on_progress,
        )
        indexed = list(enumerate(trial_results))

    # Campaign metadata is stamped in the parent, after reassembly (and
    # after any checkpoint restore), so archived bytes cannot depend on
    # where — or in which run — a trial happened to execute.
    for t, result in indexed:
        result.metadata["experiment"] = spec.name
        result.metadata["trial"] = t
        result.metadata["workload"] = spec.workload.describe()
    results = [result for _, result in indexed]

    times = [
        float(r.completion_time) for r in results if r.completion_time is not None
    ]
    return BatchOutcome(
        spec=spec,
        results=results,
        network_params=dict(network.parameter_summary()),
        completion=summarize(times) if times else None,
        completed_fraction=sum(r.completed for r in results) / spec.trials,
        quarantined=quarantined,
        events=events,
        restored=restored,
    )


def _grid_groups(specs: Sequence[ExperimentSpec], backend: str) -> List[List[int]]:
    """Spec-index groups fusable into one grid pass, in first-seen order.

    Two experiments fuse when they realize the *same network* (identical
    workload recipe and network seed) and both are grid-eligible
    (:func:`~repro.sim.runner.grid_batchable`). Groups of one gain
    nothing over the per-spec batched path and keep its exact error
    labels, so only groups of two or more are returned.
    """
    if backend != "vectorized":
        return []
    groups: Dict[str, List[int]] = {}
    for i, spec in enumerate(specs):
        if not grid_batchable(spec.protocol, spec.runner_params):
            continue
        key = json.dumps(
            {"workload": spec.workload.describe(), "seed": spec.network_seed},
            sort_keys=True,
        )
        groups.setdefault(key, []).append(i)
    return [indices for indices in groups.values() if len(indices) >= 2]


def _run_grid_group(
    specs: Sequence[ExperimentSpec],
    indices: Sequence[int],
    base_seed: Optional[int],
    *,
    max_workers: int,
    chunk_size: Optional[int],
    batch_size: Optional[int],
    trial_timeout: Optional[float],
    on_progress: Optional[Callable[[str, int, int], None]],
) -> List[BatchOutcome]:
    """Run a fusable spec group as one grid campaign; outcomes per index.

    The shared network is realized once; every spec point advances in
    the same kernel passes (see
    :func:`~repro.sim.parallel.run_grid_spec_trials`). Metadata is
    stamped exactly as :func:`_run_spec` stamps it — experiment, trial,
    workload, in that insertion order — so archives are byte-identical
    to per-spec execution.
    """
    group = [specs[i] for i in indices]
    network = generate_network(group[0].workload, seed=group[0].network_seed)
    entries = [(s.protocol, s.trials, s.runner_params) for s in group]
    per_entry = run_grid_spec_trials(
        network,
        entries,
        base_seed=base_seed,
        max_workers=max_workers,
        chunk_size=chunk_size,
        batch_size=batch_size,
        trial_timeout=trial_timeout,
        experiment=" + ".join(s.name for s in group),
        on_progress=(
            None
            if on_progress is None
            else lambda j, done, total: on_progress(group[j].name, done, total)
        ),
    )
    outcomes = []
    for spec, results in zip(group, per_entry):
        for t, result in enumerate(results):
            result.metadata["experiment"] = spec.name
            result.metadata["trial"] = t
            result.metadata["workload"] = spec.workload.describe()
        times = [
            float(r.completion_time)
            for r in results
            if r.completion_time is not None
        ]
        outcomes.append(
            BatchOutcome(
                spec=spec,
                results=results,
                network_params=dict(network.parameter_summary()),
                completion=summarize(times) if times else None,
                completed_fraction=sum(r.completed for r in results) / spec.trials,
            )
        )
    return outcomes


def run_batch(
    specs: Sequence[ExperimentSpec],
    base_seed: Optional[int] = 0,
    output_dir: Optional[Union[str, Path]] = None,
    *,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    chaos: Optional[ChaosPlan] = None,
    on_progress: Optional[Callable[[str, int, int], None]] = None,
    queue_dir: Optional[Union[str, Path]] = None,
    lease: Optional[Any] = None,
) -> List[BatchOutcome]:
    """Run every experiment; optionally archive raw trials + manifest.

    Args:
        specs: The campaign; names must be unique.
        base_seed: Root seed — trial ``t`` of every experiment uses
            ``derive_trial_seed(base_seed, t)``, so two experiments on
            the same workload face identical protocol randomness and
            differ only in what is being compared.
        output_dir: If given, write ``<name>.json`` per experiment (all
            trial results) and ``manifest.json``, all atomically and
            checksummed (format :data:`ARCHIVE_SCHEMA_VERSION`).
        max_workers: Trial fan-out per experiment (see
            :mod:`repro.sim.parallel`). Archived output is byte-identical
            for any worker count, so neither it nor ``backend`` is
            recorded in the manifest.
        backend: ``auto`` (default), ``serial``, ``process`` or
            ``vectorized`` (trial-batched engine; byte-identical
            output, see :mod:`repro.sim.batched`). Unsupervised
            vectorized campaigns additionally fuse grid-eligible
            experiments that share a workload recipe and network seed
            into parameter-grid batches
            (:class:`~repro.sim.batched.GridBatchedSimulator`) — one
            kernel pass advances every spec point, still byte-identical
            to per-spec execution. ``distributed`` (with ``queue_dir``)
            shards chunks across ``m2hew worker`` processes instead.
        chunk_size: Trials per worker dispatch (default: auto).
        batch_size: Trials per vectorized batch (``vectorized`` only;
            default: one batch per dispatch unit).
        trial_timeout: Per-trial wall-clock budget in seconds.
        retry: Supervise execution with this retry/quarantine policy
            (see :class:`~repro.resilience.policy.RetryPolicy`) instead
            of failing the campaign on the first trial error.
        checkpoint_dir: Journal completed trials here and restore any
            found from a previous interrupted run of the same campaign
            (implies supervision). The resumed campaign's archives are
            byte-identical to an uninterrupted run's.
        chaos: Deterministic execution-layer fault plan (implies
            supervision); for tests and recovery drills.
        queue_dir: Shared work-queue directory (implies supervision):
            chunks are published for ``m2hew worker`` processes on any
            host to claim, with this process coordinating — see
            :mod:`repro.resilience.distributed`. Archives stay
            byte-identical for any worker count or kill schedule.
        lease: Optional
            :class:`~repro.resilience.distributed.LeasePolicy`
            (cadence/TTL knobs for the queue protocol).
        on_progress: Optional observer called with ``(experiment name,
            trials completed, trials total)`` as each experiment
            advances (per trial, batch or collected chunk depending on
            the backend — always in dispatch order). Purely
            observational and never recorded, so passing it cannot
            change archived bytes; an exception it raises aborts the
            campaign (cooperative cancellation).

    Campaigns that quarantined trials or degraded their backend record
    a ``"resilience"`` section in the manifest (with replay seeds per
    quarantined trial); campaigns that ran clean — retries included —
    archive bytes indistinguishable from an unsupervised run.
    """
    if not specs:
        raise ConfigurationError("batch needs at least one experiment")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate experiment names: {sorted(names)}")

    # Unsupervised vectorized campaigns fuse same-network spec groups
    # into grid batches — one kernel pass advances every spec point.
    # Byte-identical to per-spec execution, so the archive (written in
    # spec order below) cannot tell the difference.
    supervised = (
        retry is not None
        or checkpoint_dir is not None
        or chaos is not None
        or queue_dir is not None
        or backend == "distributed"
    )
    fused: Dict[int, BatchOutcome] = {}
    if not supervised:
        for indices in _grid_groups(specs, backend):
            for i, outcome in zip(
                indices,
                _run_grid_group(
                    specs,
                    indices,
                    base_seed,
                    max_workers=max_workers,
                    chunk_size=chunk_size,
                    batch_size=batch_size,
                    trial_timeout=trial_timeout,
                    on_progress=on_progress,
                ),
            ):
                fused[i] = outcome

    outcomes = [
        fused[i]
        if i in fused
        else _run_spec(
            spec,
            base_seed,
            max_workers=max_workers,
            backend=backend,
            chunk_size=chunk_size,
            batch_size=batch_size,
            trial_timeout=trial_timeout,
            retry=retry,
            checkpoint_dir=checkpoint_dir,
            chaos=chaos,
            on_progress=(
                None if on_progress is None else partial(on_progress, spec.name)
            ),
            queue_dir=queue_dir,
            lease=lease,
        )
        for i, spec in enumerate(specs)
    ]

    if output_dir is not None:
        _archive(outcomes, base_seed, Path(output_dir))
    return outcomes


def _archive(
    outcomes: Sequence[BatchOutcome], base_seed: Optional[int], out: Path
) -> None:
    """Write the format-2 archive: per-experiment payloads + manifest."""
    from ..resilience.supervisor import ARCHIVED_EVENT_KINDS

    out.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {
        "schema_version": ARCHIVE_SCHEMA_VERSION,
        "base_seed": base_seed,
        "experiments": [],
    }
    quarantined: List[Dict[str, Any]] = []
    downgrades: List[Dict[str, Any]] = []
    for outcome in outcomes:
        payload = {
            "schema_version": ARCHIVE_SCHEMA_VERSION,
            "spec": {
                "name": outcome.spec.name,
                "protocol": outcome.spec.protocol,
                "trials": outcome.spec.trials,
                "network_seed": outcome.spec.network_seed,
                "workload": outcome.spec.workload.describe(),
                "runner_params": _archived_runner_params(
                    outcome.spec.runner_params
                ),
            },
            "network_params": outcome.network_params,
            "trials": [r.to_dict() for r in outcome.results],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        atomic_write_text(out / f"{outcome.spec.name}.json", text)
        manifest["experiments"].append(
            {
                "name": outcome.spec.name,
                "file": f"{outcome.spec.name}.json",
                "sha256": sha256_of_text(text),
                "summary": outcome.as_row(),
            }
        )
        quarantined.extend(q.as_dict() for q in outcome.quarantined)
        downgrades.extend(
            e.as_dict()
            for e in outcome.events
            if e.kind in ARCHIVED_EVENT_KINDS
        )
    # Only a campaign that actually lost trials or changed how it
    # executed gets a resilience section — recovered-but-clean runs must
    # archive byte-identical to never-faulted ones.
    if quarantined or downgrades:
        manifest["resilience"] = {
            "quarantined": quarantined,
            "downgrades": downgrades,
        }
    atomic_write_text(
        out / "manifest.json", json.dumps(manifest, indent=2, sort_keys=True)
    )


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return str(value)


def _archived_runner_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON form of a spec's runner params for the experiment archive.

    Fault plans archive via their dict form (so a replay rebuilds the
    exact plan); trivial or absent plans are omitted entirely, keeping
    the archived bytes of a zero-intensity campaign identical to those
    of a fault-free one.
    """
    archived: Dict[str, Any] = {}
    for k, v in params.items():
        if k == "faults":
            from ..faults.serialization import as_fault_plan, plan_to_dict

            plan = as_fault_plan(v)
            if plan is None or plan.is_trivial:
                continue
            archived[k] = plan_to_dict(plan)
        else:
            archived[k] = _jsonable(v)
    return archived
