"""Declarative experiment batches.

A release-quality reproduction needs a way to describe a whole campaign
— several (workload, protocol, parameters) combinations, each with
seeded trials — and archive everything it produced. An
:class:`ExperimentSpec` names one combination; :func:`run_batch`
executes the campaign and (optionally) writes one JSON file per
experiment plus a manifest, so a results directory is self-describing
and every number in a paper table can be traced to raw trial files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..analysis.stats import SampleSummary, summarize
from ..exceptions import ConfigurationError
from ..workloads.generator import WorkloadConfig, generate_network
from .parallel import run_spec_trials
from .results import DiscoveryResult
from .runner import SYNC_PROTOCOLS

__all__ = ["ExperimentSpec", "BatchOutcome", "SYNC_PROTOCOLS", "run_batch"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment of a batch.

    Attributes:
        name: Unique label (also the archive file stem).
        workload: Network recipe.
        protocol: ``algorithm1|algorithm2|algorithm3`` (synchronous) or
            ``algorithm4`` (asynchronous).
        trials: Seeded trials to run.
        network_seed: Seed for realizing the workload (one instance per
            experiment; per-trial randomness varies only the protocol).
        runner_params: Extra keyword arguments for
            :func:`~repro.sim.runner.run_synchronous` /
            :func:`~repro.sim.runner.run_asynchronous` (budgets,
            ``delta_est``, drift, …).
    """

    name: str
    workload: WorkloadConfig
    protocol: str
    trials: int = 5
    network_seed: int = 0
    runner_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigurationError(
                f"experiment name must be a non-empty file stem, got {self.name!r}"
            )
        if self.protocol not in SYNC_PROTOCOLS + ("algorithm4",):
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r} for batch experiments"
            )
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")


@dataclass
class BatchOutcome:
    """All trials of one experiment, with a completion-time summary."""

    spec: ExperimentSpec
    results: List[DiscoveryResult]
    network_params: Dict[str, float]
    completion: Optional[SampleSummary]
    completed_fraction: float

    def as_row(self) -> Dict[str, Any]:
        """Row form for table rendering."""
        row: Dict[str, Any] = {
            "experiment": self.spec.name,
            "protocol": self.spec.protocol,
            "trials": len(self.results),
            "completed": round(self.completed_fraction, 3),
        }
        if self.completion is not None:
            row["mean_time"] = round(self.completion.mean, 2)
            row["p90_time"] = round(self.completion.p90, 2)
        return row


def _run_spec(
    spec: ExperimentSpec,
    base_seed: Optional[int],
    *,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
) -> BatchOutcome:
    network = generate_network(spec.workload, seed=spec.network_seed)
    results: List[DiscoveryResult] = run_spec_trials(
        network,
        spec.protocol,
        trials=spec.trials,
        base_seed=base_seed,
        runner_params=spec.runner_params,
        max_workers=max_workers,
        backend=backend,
        chunk_size=chunk_size,
        batch_size=batch_size,
        trial_timeout=trial_timeout,
        experiment=spec.name,
    )
    # Campaign metadata is stamped in the parent, after reassembly, so
    # archived bytes cannot depend on where a trial happened to run.
    for t, result in enumerate(results):
        result.metadata["experiment"] = spec.name
        result.metadata["trial"] = t
        result.metadata["workload"] = spec.workload.describe()

    times = [
        float(r.completion_time) for r in results if r.completion_time is not None
    ]
    return BatchOutcome(
        spec=spec,
        results=results,
        network_params=dict(network.parameter_summary()),
        completion=summarize(times) if times else None,
        completed_fraction=sum(r.completed for r in results) / len(results),
    )


def run_batch(
    specs: Sequence[ExperimentSpec],
    base_seed: Optional[int] = 0,
    output_dir: Optional[Union[str, Path]] = None,
    *,
    max_workers: int = 1,
    backend: str = "auto",
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
) -> List[BatchOutcome]:
    """Run every experiment; optionally archive raw trials + manifest.

    Args:
        specs: The campaign; names must be unique.
        base_seed: Root seed — trial ``t`` of every experiment uses
            ``derive_trial_seed(base_seed, t)``, so two experiments on
            the same workload face identical protocol randomness and
            differ only in what is being compared.
        output_dir: If given, write ``<name>.json`` per experiment (all
            trial results) and ``manifest.json``.
        max_workers: Trial fan-out per experiment (see
            :mod:`repro.sim.parallel`). Archived output is byte-identical
            for any worker count, so neither it nor ``backend`` is
            recorded in the manifest.
        backend: ``auto`` (default), ``serial``, ``process`` or
            ``vectorized`` (trial-batched engine; byte-identical
            output, see :mod:`repro.sim.batched`).
        chunk_size: Trials per worker dispatch (default: auto).
        batch_size: Trials per vectorized batch (``vectorized`` only;
            default: one batch per dispatch unit).
        trial_timeout: Per-trial wall-clock budget in seconds.
    """
    if not specs:
        raise ConfigurationError("batch needs at least one experiment")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate experiment names: {sorted(names)}")

    outcomes = [
        _run_spec(
            spec,
            base_seed,
            max_workers=max_workers,
            backend=backend,
            chunk_size=chunk_size,
            batch_size=batch_size,
            trial_timeout=trial_timeout,
        )
        for spec in specs
    ]

    if output_dir is not None:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        manifest = {
            "base_seed": base_seed,
            "experiments": [],
        }
        for outcome in outcomes:
            payload = {
                "spec": {
                    "name": outcome.spec.name,
                    "protocol": outcome.spec.protocol,
                    "trials": outcome.spec.trials,
                    "network_seed": outcome.spec.network_seed,
                    "workload": outcome.spec.workload.describe(),
                    "runner_params": _archived_runner_params(
                        outcome.spec.runner_params
                    ),
                },
                "network_params": outcome.network_params,
                "trials": [r.to_dict() for r in outcome.results],
            }
            (out / f"{outcome.spec.name}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True)
            )
            manifest["experiments"].append(
                {
                    "name": outcome.spec.name,
                    "file": f"{outcome.spec.name}.json",
                    "summary": outcome.as_row(),
                }
            )
        (out / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
    return outcomes


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return str(value)


def _archived_runner_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON form of a spec's runner params for the experiment archive.

    Fault plans archive via their dict form (so a replay rebuilds the
    exact plan); trivial or absent plans are omitted entirely, keeping
    the archived bytes of a zero-intensity campaign identical to those
    of a fault-free one.
    """
    archived: Dict[str, Any] = {}
    for k, v in params.items():
        if k == "faults":
            from ..faults.serialization import as_fault_plan, plan_to_dict

            plan = as_fault_plan(v)
            if plan is None or plan.is_trivial:
                continue
            archived[k] = plan_to_dict(plan)
        else:
            archived[k] = _jsonable(v)
    return archived
