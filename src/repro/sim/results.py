"""Simulation results.

Both engines report discovery progress per *directed link*: the first
time (slot index or real time) at which the receiver heard a clear hello
from the transmitter. :class:`DiscoveryResult` bundles those times with
run metadata and offers the summary statistics that the experiments
print (completion time, coverage fraction, stragglers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from ..exceptions import SimulationError

__all__ = [
    "RESULT_FORMAT_VERSION",
    "DiscoveryResult",
    "LinkKey",
    "result_from_dict",
    "load_result",
]

RESULT_FORMAT_VERSION = 1

LinkKey = Tuple[int, int]


@dataclass
class DiscoveryResult:
    """Outcome of one discovery run.

    Attributes:
        time_unit: ``"slots"`` for synchronous runs (times are global
            slot indices, integers) or ``"seconds"`` for asynchronous
            runs (times are real times).
        coverage: First-coverage time per directed link
            ``(transmitter, receiver)``; ``None`` if never covered
            within the simulated horizon.
        horizon: The last simulated instant (slots executed, or real
            end time).
        completed: Whether every link was covered within the horizon.
        neighbor_tables: Final ``{owner: {neighbor: common channels}}``
            as reported by each node's protocol instance.
        start_times: When each node started its protocol (global slot or
            real time).
        network_params: Snapshot of ``N, S, Δ, ρ`` and link count.
        metadata: Free-form extras (protocol name, seeds, clock model…).
    """

    time_unit: str
    coverage: Dict[LinkKey, Optional[float]]
    horizon: float
    completed: bool
    neighbor_tables: Dict[int, Dict[int, FrozenSet[int]]]
    start_times: Dict[int, float]
    network_params: Mapping[str, float]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_unit not in ("slots", "seconds"):
            raise SimulationError(f"unknown time unit {self.time_unit!r}")
        if self.completed != all(
            t is not None for t in self.coverage.values()
        ):
            raise SimulationError(
                "completed flag inconsistent with coverage map"
            )

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------

    @property
    def num_links(self) -> int:
        """Number of directed links tracked."""
        return len(self.coverage)

    @property
    def num_covered(self) -> int:
        """Links covered within the horizon."""
        return sum(1 for t in self.coverage.values() if t is not None)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of links covered (1.0 when complete)."""
        if not self.coverage:
            return 1.0
        return self.num_covered / len(self.coverage)

    @property
    def completion_time(self) -> Optional[float]:
        """Time the *last* link was covered; ``None`` if incomplete.

        For a synchronous run this is the global slot index of the final
        discovery (so "slots needed" is ``completion_time + 1``).
        """
        if not self.completed:
            return None
        if not self.coverage:
            return 0.0
        return max(t for t in self.coverage.values() if t is not None)

    @property
    def last_start_time(self) -> float:
        """``T_s`` — the time by which every node has started."""
        if not self.start_times:
            return 0.0
        return max(self.start_times.values())

    @property
    def completion_after_all_started(self) -> Optional[float]:
        """``completion_time − T_s`` — what Theorems 3, 9, 10 bound."""
        done = self.completion_time
        if done is None:
            return None
        return max(0.0, done - self.last_start_time)

    def uncovered_links(self) -> List[LinkKey]:
        """Links never covered within the horizon, sorted."""
        return sorted(k for k, t in self.coverage.items() if t is None)

    def covered_times(self) -> List[float]:
        """All first-coverage times, sorted ascending."""
        return sorted(t for t in self.coverage.values() if t is not None)

    def coverage_time_quantile(self, q: float) -> Optional[float]:
        """Time by which a ``q`` fraction of links were covered.

        ``None`` if fewer than a ``q`` fraction were ever covered.
        """
        if not 0.0 < q <= 1.0:
            raise SimulationError(f"quantile must be in (0, 1], got {q}")
        times = self.covered_times()
        needed = int(-(-q * len(self.coverage) // 1))  # ceil
        if needed == 0:
            return 0.0
        if len(times) < needed:
            return None
        return times[needed - 1]

    def per_node_completion(self) -> Dict[int, Optional[float]]:
        """For each receiver, when it finished discovering all its links."""
        per_node: Dict[int, List[Optional[float]]] = {}
        for (_, receiver), t in self.coverage.items():
            per_node.setdefault(receiver, []).append(t)
        out: Dict[int, Optional[float]] = {}
        for receiver, times in per_node.items():
            out[receiver] = None if any(t is None for t in times) else max(
                t for t in times if t is not None
            )
        return out

    def summary(self) -> Dict[str, object]:
        """Compact printable summary."""
        return {
            "time_unit": self.time_unit,
            "links": self.num_links,
            "covered": self.num_covered,
            "coverage_fraction": round(self.coverage_fraction, 4),
            "completed": self.completed,
            "completion_time": self.completion_time,
            "completion_after_all_started": self.completion_after_all_started,
            "horizon": self.horizon,
        }

    # ------------------------------------------------------------------
    # serialization (archiving experiment outputs)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form; inverse of :func:`result_from_dict`.

        Only JSON-representable metadata values survive the round trip;
        others are stringified. Metadata is returned in its *JSON-normal*
        form (nested int keys become strings, tuples become lists), so a
        result that round-tripped through a journal or work queue
        serializes byte-identically to one that never left memory —
        ``sort_keys`` would otherwise order a 10+-entry int-keyed dict
        (numerically) differently from its reloaded self (lexically).
        """
        return {
            "format_version": RESULT_FORMAT_VERSION,
            "time_unit": self.time_unit,
            "horizon": self.horizon,
            "completed": self.completed,
            "coverage": [
                [list(key), time] for key, time in sorted(self.coverage.items())
            ],
            "neighbor_tables": {
                str(owner): {
                    str(neighbor): sorted(channels)
                    for neighbor, channels in table.items()
                }
                for owner, table in self.neighbor_tables.items()
            },
            "start_times": {str(n): t for n, t in self.start_times.items()},
            "network_params": dict(self.network_params),
            "metadata": json.loads(
                json.dumps({k: _jsonable(v) for k, v in self.metadata.items()})
            ),
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write this result to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return str(value)


def result_from_dict(data: Mapping[str, Any]) -> DiscoveryResult:
    """Reconstruct a result written by :meth:`DiscoveryResult.to_dict`."""
    version = data.get("format_version")
    if version != RESULT_FORMAT_VERSION:
        raise SimulationError(
            f"unsupported result format version {version!r} "
            f"(expected {RESULT_FORMAT_VERSION})"
        )
    coverage = {
        (int(key[0]), int(key[1])): (None if time is None else float(time))
        for key, time in data["coverage"]
    }
    tables = {
        int(owner): {
            int(neighbor): frozenset(int(c) for c in channels)
            for neighbor, channels in table.items()
        }
        for owner, table in data["neighbor_tables"].items()
    }
    return DiscoveryResult(
        time_unit=data["time_unit"],
        coverage=coverage,
        horizon=float(data["horizon"]),
        completed=bool(data["completed"]),
        neighbor_tables=tables,
        start_times={int(n): float(t) for n, t in data["start_times"].items()},
        network_params=dict(data["network_params"]),
        metadata=dict(data.get("metadata", {})),
    )


def load_result(path: Union[str, Path]) -> DiscoveryResult:
    """Load a result previously written by :meth:`DiscoveryResult.save`."""
    return result_from_dict(json.loads(Path(path).read_text()))
