"""Deterministic random-number management for simulations.

Every stochastic component of the library draws from a
:class:`numpy.random.Generator`. To make whole experiments reproducible
from a single integer seed while keeping the per-node streams
statistically independent, we derive all generators from a root
:class:`numpy.random.SeedSequence` using its ``spawn`` mechanism.

The central abstraction is :class:`RngFactory`: one factory per
simulation run, handing out independent named streams. Two factories
built from the same seed produce identical streams for identical
request sequences, which is what makes trials replayable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]

__all__ = ["RngFactory", "make_generator", "spawn_generators", "SeedLike"]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize ``seed`` into a :class:`numpy.random.SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Create a single PCG64 generator from ``seed``.

    ``None`` produces a generator seeded from OS entropy; pass an integer
    for reproducible behavior.
    """
    return np.random.Generator(np.random.PCG64(_as_seed_sequence(seed)))


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = _as_seed_sequence(seed).spawn(count)
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


class RngFactory:
    """Hands out named, independent random streams derived from one seed.

    Streams are keyed by arbitrary strings (e.g. ``"node-7"`` or
    ``"topology"``). Requesting the same key twice returns the *same*
    generator object, so components can share a stream by name.

    The derivation is order-independent: the stream for a key depends
    only on the root seed and the key, never on which other keys were
    requested first. This keeps results stable when a refactoring
    changes the order in which components initialize.
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._root = _as_seed_sequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> Iterable[int]:
        """Entropy of the root seed sequence (for logging/repro records)."""
        entropy = self._root.entropy
        if entropy is None:
            return ()
        if isinstance(entropy, int):
            return (entropy,)
        return tuple(entropy)

    def stream(self, key: str) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use."""
        if key not in self._streams:
            # Derive a child seed from the root entropy plus a stable
            # hash of the key so that derivation is order-independent.
            # The root's own spawn_key is preserved so forked factories
            # stay independent of their parents.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key)
                + (len(key), _stable_key_hash(key)),
            )
            self._streams[key] = np.random.Generator(np.random.PCG64(child))
        return self._streams[key]

    def node_stream(self, node_id: int) -> np.random.Generator:
        """Convenience accessor for the per-node protocol stream."""
        return self.stream(f"node-{node_id}")

    def fork(self, label: str) -> "RngFactory":
        """Create a sub-factory whose streams are independent of ours."""
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key)
            + (0xF0F0, len(label), _stable_key_hash(label)),
        )
        return RngFactory(child)


def _stable_key_hash(key: str) -> int:
    """A deterministic 61-bit FNV-1a hash (``hash()`` is salted per run)."""
    value = 0xCBF29CE484222325
    for byte in key.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value & 0x1FFFFFFFFFFFFFFF


def derive_trial_seed(base_seed: Optional[int], trial_index: int) -> np.random.SeedSequence:
    """Seed sequence for trial ``trial_index`` of an experiment.

    Distinct trials of the same experiment get independent randomness
    while the whole experiment stays reproducible from ``base_seed``.
    """
    if trial_index < 0:
        raise ValueError(f"trial_index must be non-negative, got {trial_index}")
    return np.random.SeedSequence(entropy=base_seed, spawn_key=(trial_index,))


__all__.append("derive_trial_seed")
