"""Trial- and grid-batched synchronous engine: one kernel, many trials.

Monte-Carlo campaigns (E1–E3 theorem checks, robustness sweeps, the
tournament league) run *many spec points × many trials* of the same
slot kernel. The process pool (:mod:`repro.sim.parallel`) buys little
on small hosts, so this engine applies the other classic lever — a
**batch axis**: one simulator advances ``R`` independent trial rows per
slot with ``(R, N)``-shaped arrays, and resolves reception for the
whole batch with one :class:`~repro.sim.fast_slotted.SparseReception`
scatter call whose keys carry a per-row offset. Per-slot cost scales
with the batch's actual transmitters and audibility edges, never
O(R·C·N²), and memory stays O(R·(N + links)).

Two batching shapes share the kernel:

* :class:`BatchedSlottedSimulator` — the (B, N) *trial batch*: B seeded
  trials of one experiment (shared schedule, erasure, fault plan);
* :class:`GridBatchedSimulator` — the (G, B, N) *grid batch*: G
  experiment cells (each a :class:`GridCell` with its own schedule,
  start offsets, erasure probability and fault plan, sharing only the
  network and stopping condition) advance together, each contributing a
  contiguous block of rows. A whole Δ_est/ρ/erasure/fault-preset sweep
  thus pays kernel setup and per-slot Python dispatch once instead of
  once per spec point.

Determinism contract (pinned by ``tests/test_batched_engine.py`` and
``tests/test_grid_engine.py``):

* row ``r`` owns the ``"fast-engine"`` stream of its *own*
  :class:`~repro.sim.rng.RngFactory` — the exact generator the serial
  :class:`~repro.sim.fast_slotted.FastSlottedSimulator` would use — and
  the engine replays the serial engine's per-trial draw sequence
  call-for-call (decision uniforms, channel picks, erasure coins, loss
  coins, including every data-dependent early exit);
* therefore every row's :class:`~repro.sim.results.DiscoveryResult` is
  **byte-identical to the serial fast engine's**, which makes the
  output independent of both ``B`` and ``G`` by construction — batching
  is a dispatch optimization exactly like worker fan-out, so results
  report the same ``engine: slotted-fast`` metadata and archives never
  encode how trials were grouped.

Fault plans compile per row (each against its row's factory, so fault
trajectories match serial runs) and are consulted through the batched
entry points of :class:`~repro.faults.runtime.FaultRuntime`, which
treat fault-free rows (``None`` runtimes) as identity.

Pass ``profile=True`` to either simulator to collect per-phase timings
(:class:`~repro.sim.profile.SlotProfiler`) via :meth:`profile`; the
default is a ``None`` profiler that costs the hot loop nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..exceptions import ConfigurationError
from ..net.network import M2HeWNetwork
from .fast_slotted import SparseReception, VectorSchedule
from .profile import SlotProfiler
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan
    from ..faults.runtime import FaultRuntime

__all__ = ["BatchedSlottedSimulator", "GridBatchedSimulator", "GridCell"]


@dataclass(frozen=True)
class GridCell:
    """One experiment cell of a grid batch.

    A cell is everything that may differ between the spec points of a
    sweep while still sharing one kernel pass: the probability schedule,
    the per-trial seed factories, start offsets, the erasure probability
    and the fault plan. The network and the stopping condition are
    shared by the whole grid (callers group spec points accordingly).
    """

    schedule: VectorSchedule
    rng_factories: Sequence[RngFactory]
    start_offsets: Optional[Mapping[int, int]] = None
    erasure_prob: float = 0.0
    faults: Optional["FaultPlan"] = field(default=None)


def _raw_pick_verified(rng: np.random.Generator, size: int, n: int) -> bool:
    """Prove ``random_raw``-based picks replicate ``integers`` draws.

    Runs both draw disciplines on independent copies of ``rng``'s bit
    generator state (the live stream is never advanced) and accepts the
    fast path only if the values match *and* both copies end in the
    same state (checked behaviorally with a follow-up draw). Callers
    guarantee ``size`` is a power of two ≥ 2 and ``n`` is even.
    """
    bg = rng.bit_generator
    try:
        ref_bg = type(bg)(0)
        ref_bg.state = bg.state
        raw_bg = type(bg)(0)
        raw_bg.state = bg.state
    except (TypeError, ValueError):
        return False
    ref = np.random.Generator(ref_bg).integers(0, size, n)
    raw = raw_bg.random_raw(n // 2)
    shift = 32 - (size.bit_length() - 1)
    emulated = np.empty(n, dtype=np.int64)
    emulated[0::2] = (raw & 0xFFFFFFFF) >> shift
    emulated[1::2] = raw >> (32 + shift)
    if not bool((ref == emulated).all()):
        return False
    # Same end state ⇒ the next real draw stays aligned too.
    probe = np.random.Generator(ref_bg).random(4)
    return bool((probe == np.random.Generator(raw_bg).random(4)).all())


class GridBatchedSimulator:
    """Vectorized synchronous simulator for a grid of seeded trial rows.

    Semantics per row are identical to
    :class:`~repro.sim.fast_slotted.FastSlottedSimulator` (bit-for-bit;
    see the module docstring). ``cells[g]`` contributes
    ``len(cells[g].rng_factories)`` consecutive rows; :meth:`run`
    returns results in row order and :attr:`cell_slices` maps them back
    to cells.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        cells: Sequence[GridCell],
        *,
        profile: bool = False,
    ) -> None:
        if not cells:
            raise ConfigurationError("grid needs at least one cell")
        self._network = network
        self._ids = network.node_ids
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        n = len(self._ids)
        self._num_nodes = n
        self._cells = list(cells)
        self._profiler: Optional[SlotProfiler] = (
            SlotProfiler() if profile else None
        )

        # Row layout: cell g owns rows cell_slices[g] (contiguous).
        row = 0
        slices: List[slice] = []
        for cell in self._cells:
            if not cell.rng_factories:
                raise ConfigurationError("batch needs at least one RngFactory")
            if not 0.0 <= cell.erasure_prob < 1.0:
                raise ConfigurationError(
                    f"erasure_prob must be in [0, 1), got {cell.erasure_prob}"
                )
            if cell.schedule.num_nodes != n:
                raise ConfigurationError(
                    f"schedule covers {cell.schedule.num_nodes} nodes, "
                    f"network has {n}"
                )
            slices.append(slice(row, row + len(cell.rng_factories)))
            row += len(cell.rng_factories)
        self.cell_slices: List[slice] = slices
        batch = row
        self._batch = batch
        self._schedules = [cell.schedule for cell in self._cells]
        self._streams = [
            f.stream("fast-engine")
            for cell in self._cells
            for f in cell.rng_factories
        ]
        # Per-row erasure probability, kept as the caller's Python float
        # so result metadata reproduces the serial engine's bytes.
        self._erasure_list: List[float] = [
            cell.erasure_prob
            for cell, sl in zip(self._cells, slices)
            for _ in range(sl.stop - sl.start)
        ]
        self._any_erasure = any(p > 0.0 for p in self._erasure_list)

        # Fault plans realize independently per row, exactly as the
        # serial engine would with each trial's own factory. Rows whose
        # plan is trivial (or absent) keep a None runtime and follow the
        # fault-free code path through the batched mask helpers.
        runtimes: List[Optional["FaultRuntime"]] = []
        for cell in self._cells:
            if cell.faults is None:
                runtimes.extend([None] * len(cell.rng_factories))
            else:
                from ..faults.runtime import compile_plan

                runtimes.extend(
                    compile_plan(
                        cell.faults, network, factory, time_unit="slots"
                    )
                    for factory in cell.rng_factories
                )
        self._runtimes: Optional[List[Optional["FaultRuntime"]]] = (
            runtimes if any(rt is not None for rt in runtimes) else None
        )
        live_runtimes = [rt for rt in runtimes if rt is not None]
        self._has_spectrum = any(rt.has_spectrum for rt in live_runtimes)
        self._has_churn = any(rt.has_churn for rt in live_runtimes)
        self._has_loss = any(rt.has_loss for rt in live_runtimes)

        # Per-row start offsets (joins fold in per row, mirroring the
        # serial constructor).
        self._offsets = np.zeros((batch, n), dtype=np.int64)
        for cell, sl in zip(self._cells, slices):
            base = np.zeros(n, dtype=np.int64)
            for nid, off in dict(cell.start_offsets or {}).items():
                if off < 0:
                    raise ConfigurationError(
                        f"start offset of node {nid} must be >= 0, got {off}"
                    )
                base[self._index[nid]] = int(off)
            self._offsets[sl] = base
        if self._runtimes is not None:
            for b, runtime in enumerate(self._runtimes):
                if runtime is None:
                    continue
                for i, nid in enumerate(self._ids):
                    join = runtime.join_offset(nid)
                    if join > self._offsets[b, i]:
                        self._offsets[b, i] = join

        # Dense channel indexing shared by every row (identical to the
        # serial fast engine's).
        universal = sorted(network.universal_channel_set)
        dense_of_channel = {c: k for k, c in enumerate(universal)}
        self._num_dense = len(universal)
        self._sizes = np.array(
            [len(network.channels_of(nid)) for nid in self._ids], dtype=np.int64
        )
        self._chan_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._chan_starts[1:])
        self._chan_flat = np.empty(int(self._chan_starts[-1]), dtype=np.int64)
        for i, nid in enumerate(self._ids):
            chans = sorted(network.channels_of(nid))
            self._chan_flat[self._chan_starts[i] : self._chan_starts[i + 1]] = [
                dense_of_channel[c] for c in chans
            ]
        if self._runtimes is not None:
            for runtime in self._runtimes:
                if runtime is not None:
                    runtime.bind_dense(self._ids, dense_of_channel, self._num_dense)

        # The sparse reception kernel, shared across rows; per-row key
        # offsets keep the batch's scatter spaces disjoint.
        self._kernel = SparseReception(network, self._index, universal)

        # Links in network.links() order; coverage is stored per row as
        # a (R, num_links) row — O(E) per row, never O(N²). The key /
        # endpoint / span columns are hoisted here so result building
        # never touches DirectedLink properties in a per-link loop (the
        # N=500 scaling cliff: ~300k Python property calls per batch).
        links = network.links()
        self._links = links
        self._link_keys: List[Tuple[int, int]] = [link.key for link in links]
        self._link_tx: List[int] = [link.transmitter for link in links]
        self._link_rx: List[int] = [link.receiver for link in links]
        self._link_spans: List[FrozenSet[int]] = [link.span for link in links]
        lookup = np.full(n * n, -1, dtype=np.int64)
        for e_i, link in enumerate(links):
            tx = self._index[link.transmitter]
            rx = self._index[link.receiver]
            lookup[tx * n + rx] = e_i
        self._link_lookup = lookup
        self._num_links = len(links)
        # Full-coverage neighbor-table template plus per-receiver link
        # lists, both in links() order. Every completed trial reports
        # the same tables, so B result builds share one template (a
        # dict() copy per node keeps rows independent); an incomplete
        # trial rebuilds only the receivers an uncovered link touches.
        # This amortization is batch-only by design — for one trial the
        # template would cost exactly what it saves.
        self._rx_links: Dict[int, List[int]] = {nid: [] for nid in self._ids}
        self._tables_full: Dict[int, Dict[int, FrozenSet[int]]] = {
            nid: {} for nid in self._ids
        }
        for e_i, link in enumerate(links):
            self._rx_links[link.receiver].append(e_i)
            self._tables_full[link.receiver][link.transmitter] = link.span
        self._coverage_none: Dict[Tuple[int, int], Optional[float]] = (
            dict.fromkeys(self._link_keys)
        )

        # Per-row, per-node counters (radio activity + contention); the
        # flat aliases let the hot loop scatter by raveled index.
        self._tx_slots = np.zeros((batch, n), dtype=np.int64)
        self._rx_slots = np.zeros((batch, n), dtype=np.int64)
        self._collisions = np.zeros((batch, n), dtype=np.int64)
        self._clear = np.zeros((batch, n), dtype=np.int64)
        self._collisions_flat = self._collisions.reshape(-1)
        self._clear_flat = self._clear.reshape(-1)

        # Per-slot scratch (allocated once; rows refill under per-row
        # gating so stale rows are never read where it matters).
        self._uni = np.empty((batch, n), dtype=np.float64)
        self._pick = np.zeros((batch, n), dtype=np.int64)
        self._tx_buf = np.empty((batch, n), dtype=bool)
        self._listen_buf = np.empty((batch, n), dtype=bool)
        self._chan_idx_buf = np.empty((batch, n), dtype=np.int64)
        self._chan_buf = np.empty((batch, n), dtype=np.int64)
        self._row_idx = np.arange(n)
        self._trial_idx = np.arange(batch)
        self._p_buf = np.empty((batch, n), dtype=np.float64)

        # Fast-path precomputation. Once every node has started (and no
        # churn), the per-slot activity mask is just the live vector;
        # when offset rows coincide within a cell (always, unless a
        # future fault model draws per-trial joins) one schedule
        # evaluation per cell serves all its rows.
        self._max_offset = int(self._offsets.max())
        self._chan_base = self._chan_starts[:-1]
        self._cell_shared: List[Optional[np.ndarray]] = [
            self._offsets[sl][0]
            if bool((self._offsets[sl] == self._offsets[sl][0]).all())
            else None
            for sl in slices
        ]
        self._single = len(self._cells) == 1
        self._shared_offsets: Optional[np.ndarray] = (
            self._offsets[0]
            if bool((self._offsets == self._offsets[0]).all())
            else None
        )
        # Homogeneous |A(u)| lets channel picks use a scalar bound —
        # bitstream-identical to the array-bound call (numpy uses the
        # same masked-rejection draw; pinned by a test) but cheaper.
        self._scalar_size: Optional[int] = (
            int(self._sizes[0])
            if bool((self._sizes == self._sizes[0]).all())
            else None
        )
        # Power-of-two scalar bounds admit an even cheaper pick: numpy's
        # Lemire draw maps each raw 64-bit word to two picks (top bits
        # of each 32-bit half, low half first) with no rejection, so
        # ``bit_generator.random_raw(N/2)`` replaces the ~4× costlier
        # ``Generator.integers`` call. Enabled only after a behavioral
        # proof on state copies — if a numpy upgrade ever changes the
        # draw discipline the gate falls back to ``integers`` and the
        # bitstream contract is preserved.
        self._raw_shift: Optional[int] = None
        if (
            self._scalar_size is not None
            and self._scalar_size >= 2
            and self._scalar_size & (self._scalar_size - 1) == 0
            and n % 2 == 0
            and self._streams
            and _raw_pick_verified(self._streams[0], self._scalar_size, n)
        ):
            self._raw_shift = 32 - (self._scalar_size.bit_length() - 1)
        # Flat-index lookups: np.flatnonzero over an (R, N) mask yields
        # raveled positions; these tables replace the per-slot integer
        # divisions that recovered (row, node, key base) from them.
        self._div_n = np.repeat(self._trial_idx, n)
        self._mod_n = np.tile(self._row_idx, batch)
        # Last-write-wins sender scratch for edge-centric reception,
        # read back only at single-transmitter targets.
        self._sender_flat = np.empty(batch * n, dtype=np.int64)
        if self._has_spectrum:
            # Flat (row, node) base into a raveled (R, N, C) blocked
            # tensor; adding the chosen channel yields gather indices.
            self._spectrum_base = (
                self._trial_idx[:, None] * n + self._row_idx[None, :]
            ) * self._num_dense

    @property
    def batch_size(self) -> int:
        return self._batch

    def profile(self) -> Optional[Dict[str, Dict[str, float]]]:
        """Per-phase timing snapshot, or ``None`` when not profiling."""
        if self._profiler is None:
            return None
        return self._profiler.snapshot()

    def run(self, stopping: StoppingCondition) -> List[DiscoveryResult]:
        """Execute all rows; one result per row, in row order."""
        budget = stopping.require_slot_budget()
        batch = self._batch
        cov = np.full((batch, self._num_links), -1.0)
        uncovered = np.full(batch, self._num_links, dtype=np.int64)
        slots_executed = np.zeros(batch, dtype=np.int64)
        oracle = stopping.stop_on_full_coverage

        # A linkless network is complete before the first slot; the
        # serial loop's pre-slot coverage check never executes anything,
        # so neither may we (zero draws, zero radio activity).
        if oracle and self._num_links == 0:
            return [self._build_result(b, cov[b], 0) for b in range(batch)]

        # Liveness bookkeeping happens only when a row completes
        # (mirrors the serial loop: a completed trial executes no
        # further slots, everyone else runs to the budget).
        live = np.ones(batch, dtype=bool)
        live_list = list(range(batch))
        t = 0
        for t in range(budget):
            completed = self._run_slot(t, live, live_list, cov, uncovered)
            if oracle and completed is not None and completed.size:
                live[completed] = False
                slots_executed[completed] = t + 1
                live_list = np.flatnonzero(live).tolist()
                if not live_list:
                    break
        slots_executed[live] = min(t + 1, budget) if budget else 0

        return [
            self._build_result(b, cov[b], int(slots_executed[b]))
            for b in range(batch)
        ]

    def _probabilities(self, t: int) -> np.ndarray:
        """Transmit probabilities for slot ``t``, one evaluation per cell."""
        if self._single:
            shared = self._cell_shared[0]
            if shared is not None:
                return self._schedules[0].probabilities(t - shared)
            return self._schedules[0].probabilities(t - self._offsets)
        p = self._p_buf
        for g, sl in enumerate(self.cell_slices):
            shared = self._cell_shared[g]
            if shared is not None:
                p[sl] = self._schedules[g].probabilities(t - shared)
            else:
                p[sl] = self._schedules[g].probabilities(t - self._offsets[sl])
        return p

    def _run_slot(
        self,
        t: int,
        live: np.ndarray,
        live_list: List[int],
        cov: np.ndarray,
        uncovered: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Advance every live row one slot; return newly-completed rows."""
        n = self._num_nodes
        streams = self._streams
        runtimes = self._runtimes
        prof = self._profiler
        t0 = prof.start() if prof is not None else 0.0
        if runtimes is not None:
            for b in live_list:
                runtime = runtimes[b]
                if runtime is not None:
                    runtime.begin_slot(t)

        # Activity: skip the (R, N) offset comparison once every node
        # has started and churn cannot remove any (the common steady
        # state); ``active is None`` then stands for ``live[:, None]``.
        active: Optional[np.ndarray]
        if runtimes is not None and self._has_churn:
            from ..faults.runtime import FaultRuntime

            active = self._offsets <= t
            active &= FaultRuntime.batched_alive_mask(runtimes, t, n)
            active &= live[:, None]
            act_list = np.flatnonzero(active.any(axis=1)).tolist()
        elif t < self._max_offset:
            active = self._offsets <= t
            active &= live[:, None]
            act_list = np.flatnonzero(active.any(axis=1)).tolist()
        else:
            active = None
            act_list = live_list
        if not act_list:
            return None

        p = self._probabilities(t)
        if prof is not None:
            t0 = prof.lap("schedule", t0)
        uni = self._uni
        for b in act_list:
            # Same stream, same call shape as the serial engine's
            # `rng.random(n)`; `out=` fills row b without reallocating.
            streams[b].random(out=uni[b])
        transmit = self._tx_buf
        listen = self._listen_buf
        np.less(uni, p, out=transmit)
        np.logical_not(transmit, out=listen)
        if active is None:
            transmit &= live[:, None]
            listen &= live[:, None]
        else:
            transmit &= active
            listen &= active
        self._tx_slots += transmit
        self._rx_slots += listen

        # Inactive rows never transmit, so no extra `act` mask is needed.
        proceed = transmit.any(axis=1)
        proceed &= listen.any(axis=1)
        proceed_list = np.flatnonzero(proceed).tolist()
        if not proceed_list:
            return None
        pick = self._pick
        if self._raw_shift is not None:
            # Verified-equivalent raw-word form of the scalar
            # ``integers`` call below (see ``_raw_pick_verified``).
            shift = self._raw_shift
            half = n >> 1
            for b in proceed_list:
                raw = streams[b].bit_generator.random_raw(half)
                row = pick[b]
                row[0::2] = (raw & 0xFFFFFFFF) >> shift
                row[1::2] = raw >> (32 + shift)
        elif self._scalar_size is not None:
            size = self._scalar_size
            for b in proceed_list:
                pick[b] = streams[b].integers(0, size, n)
        else:
            sizes = self._sizes
            for b in proceed_list:
                pick[b] = streams[b].integers(0, sizes)
        if prof is not None:
            t0 = prof.lap("rng", t0)
        np.add(self._chan_base, pick, out=self._chan_idx_buf)
        chan = np.take(self._chan_flat, self._chan_idx_buf, out=self._chan_buf)

        if runtimes is not None and self._has_spectrum:
            from ..faults.runtime import FaultRuntime

            blocked = FaultRuntime.batched_blocked_mask(
                runtimes, n, self._num_dense
            )
            suppressed = blocked.reshape(-1)[self._spectrum_base + chan]
            suppressed &= proceed[:, None]
            transmit &= ~suppressed
            listen &= ~suppressed
            proceed &= transmit.any(axis=1)
            proceed &= listen.any(axis=1)
            if not proceed.any():
                return None
        if prof is not None:
            t0 = prof.lap("channel", t0)

        # --- batched edge-centric reception ---
        # Expand each transmitter's CSR adjacency segment into edges,
        # then keep the edges whose target is listening on the sender's
        # channel. Everything from here is O(edges), never O(listeners)
        # or O(key space): with Δ_est-scaled transmit probabilities a
        # slot has few transmitters, so the edge set is far smaller
        # than the listener set the serial kernel queries. Rows outside
        # `proceed` are harmless — a transmitter in a listener-less row
        # finds no audible targets, stale channel picks in such rows
        # are never compared.
        chan_flat = chan.reshape(-1)
        tflat = np.flatnonzero(transmit)
        tv = self._mod_n[tflat]
        starts = self._kernel.starts
        csr = chan_flat[tflat] * n
        csr += tv
        edge_counts = starts[csr + 1] - starts[csr]
        seg_ends = np.cumsum(edge_counts)
        total = int(seg_ends[-1]) if seg_ends.size else 0
        if total == 0:
            if prof is not None:
                prof.lap("reception", t0)
            return None
        shifts = np.repeat(starts[csr] - seg_ends + edge_counts, edge_counts)
        shifts += np.arange(total, dtype=np.int64)
        e_u = self._kernel.flat[shifts]
        # tflat is trial·n + tv, so the edge's flat (trial, target) key
        # is tflat − tv + target.
        e_flat = np.repeat(tflat - tv, edge_counts)
        e_flat += e_u
        e_chan = np.repeat(chan_flat[tflat], edge_counts)
        audible = listen.reshape(-1)[e_flat]
        audible &= chan_flat[e_flat] == e_chan
        hit = e_flat[audible]
        if not hit.size:
            if prof is not None:
                prof.lap("reception", t0)
            return None
        # Per-target multiplicities; np.unique returns ascending flat
        # indices — the same row-major listener order the serial loop
        # (and the old listener-query kernel) processes receptions in.
        uniq, cnt = np.unique(hit, return_counts=True)
        # Last-write-wins sender scatter: exact wherever cnt == 1, the
        # only place read; stale elsewhere by contract.
        self._sender_flat[hit] = np.repeat(tv, edge_counts)[audible]
        self._collisions_flat[uniq[cnt >= 2]] += 1
        clear_idx = uniq[cnt == 1]
        self._clear_flat[clear_idx] += 1
        if prof is not None:
            t0 = prof.lap("reception", t0)
        if not clear_idx.size:
            return None

        # --- delivery. `clear_idx` ascends, so the clear receptions
        # are already grouped by row in ascending node order — exactly
        # the order the serial loop would process them.
        if self._any_erasure:
            # Erasure coins must come from each row's own stream, one
            # `random(count)` call per row with clear receptions — and
            # only for rows whose probability is positive, call-for-call
            # what the serial engine draws.
            clear_trials = self._div_n[clear_idx]
            bounds = np.flatnonzero(np.diff(clear_trials)) + 1
            segs = np.concatenate(([0], bounds, [clear_trials.size]))
            keep = np.empty(clear_trials.size, dtype=bool)
            erasure = self._erasure_list
            for s0, s1 in zip(segs[:-1], segs[1:]):
                b = int(clear_trials[s0])
                if erasure[b] > 0.0:
                    keep[s0:s1] = streams[b].random(s1 - s0) >= erasure[b]
                else:
                    keep[s0:s1] = True
            clear_idx = clear_idx[keep]
            if clear_idx.size == 0:
                return None
        trial_ids = self._div_n[clear_idx]
        senders_all = self._sender_flat[clear_idx]
        receivers_all = self._mod_n[clear_idx]

        if runtimes is not None and self._has_loss:
            from ..faults.runtime import FaultRuntime

            keep = FaultRuntime.batched_keep_mask(
                runtimes,
                trial_ids,
                senders_all,
                receivers_all,
                float(t),
                streams,
            )
            trial_ids = trial_ids[keep]
            senders_all = senders_all[keep]
            receivers_all = receivers_all[keep]
            if trial_ids.size == 0:
                return None

        link_ids = self._link_lookup[senders_all * n + receivers_all]
        flat = trial_ids * self._num_links + link_ids
        cov_flat = cov.reshape(-1)
        fresh = cov_flat[flat] < 0
        if not fresh.any():
            if prof is not None:
                prof.lap("delivery", t0)
            return None
        cov_flat[flat[fresh]] = float(t)
        dec = np.bincount(trial_ids[fresh], minlength=self._batch)
        uncovered -= dec
        done = np.flatnonzero((dec > 0) & (uncovered == 0))
        if prof is not None:
            prof.lap("delivery", t0)
        return done if done.size else None

    def _build_result(
        self, b: int, cov_row: np.ndarray, slots_executed: int
    ) -> DiscoveryResult:
        prof = self._profiler
        t0 = prof.start() if prof is not None else 0.0
        # Coverage and tables come from the hoisted link columns;
        # contents and insertion order are identical to the historical
        # per-link property loop (template dicts hold every key in
        # links() order, per-receiver rebuilds walk that receiver's
        # links in ascending link index — the order the global loop
        # would reach them). Python-loop time is spent on whichever of
        # covered/uncovered is the *minority* side.
        times = cov_row.tolist()
        uncovered_idx = np.flatnonzero(cov_row < 0).tolist()
        completed = not uncovered_idx
        link_keys = self._link_keys
        link_rx = self._link_rx
        link_tx = self._link_tx
        link_spans = self._link_spans
        tables: Dict[int, Dict[int, FrozenSet[int]]]
        coverage: Dict[Tuple[int, int], Optional[float]]
        if completed:
            tables = {
                nid: dict(full) for nid, full in self._tables_full.items()
            }
            coverage = dict(zip(link_keys, times))
        elif 2 * len(uncovered_idx) <= self._num_links:
            # Mostly covered: copy the full templates, then repair the
            # receivers an uncovered link touches.
            dirty = {link_rx[e_i] for e_i in uncovered_idx}
            rx_links = self._rx_links
            tables = {
                nid: (
                    {
                        link_tx[e_i]: link_spans[e_i]
                        for e_i in rx_links[nid]
                        if times[e_i] >= 0
                    }
                    if nid in dirty
                    else dict(self._tables_full[nid])
                )
                for nid in self._ids
            }
            for e_i in uncovered_idx:
                times[e_i] = None
            coverage = dict(zip(link_keys, times))
        else:
            # Mostly uncovered: start from empty tables and the
            # all-``None`` coverage template, then add the covered
            # links.
            covered_idx = np.flatnonzero(cov_row >= 0).tolist()
            tables = {nid: {} for nid in self._ids}
            coverage = dict(self._coverage_none)
            for e_i in covered_idx:
                tables[link_rx[e_i]][link_tx[e_i]] = link_spans[e_i]
                coverage[link_keys[e_i]] = times[e_i]
        # "slotted-fast", not a distinct label: a batched trial is
        # defined to be indistinguishable from a serial fast-engine
        # trial, and archives never record dispatch choices (same rule
        # as worker-count invariance in repro.sim.parallel).
        metadata: Dict[str, Any] = {
            "engine": "slotted-fast",
            "erasure_prob": self._erasure_list[b],
            "radio_activity": {
                nid: {"tx": tx, "rx": rx, "quiet": 0}
                for nid, tx, rx in zip(
                    self._ids,
                    self._tx_slots[b].tolist(),
                    self._rx_slots[b].tolist(),
                )
            },
            "collisions": dict(zip(self._ids, self._collisions[b].tolist())),
            "clear_receptions": dict(zip(self._ids, self._clear[b].tolist())),
        }
        if self._runtimes is not None and self._runtimes[b] is not None:
            metadata["faults"] = self._runtimes[b].describe()
        result = DiscoveryResult(
            time_unit="slots",
            coverage=coverage,
            horizon=float(slots_executed),
            completed=completed,
            neighbor_tables=tables,
            start_times=dict(
                zip(self._ids, self._offsets[b].astype(np.float64).tolist())
            ),
            network_params=self._network.parameter_summary(),
            metadata=metadata,
        )
        if prof is not None:
            prof.lap("result", t0)
        return result


class BatchedSlottedSimulator(GridBatchedSimulator):
    """Vectorized synchronous simulator for a batch of seeded trials.

    The single-cell form of :class:`GridBatchedSimulator`:
    ``rng_factories[i]`` seeds trial ``i``; all trials share the
    network, schedule, start offsets, erasure probability, fault *plan*
    (realized independently per trial) and the stopping condition —
    i.e. one experiment's trial campaign.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        schedule: VectorSchedule,
        rng_factories: Sequence[RngFactory],
        start_offsets: Optional[Mapping[int, int]] = None,
        erasure_prob: float = 0.0,
        faults: Optional["FaultPlan"] = None,
        *,
        profile: bool = False,
    ) -> None:
        super().__init__(
            network,
            [
                GridCell(
                    schedule=schedule,
                    rng_factories=tuple(rng_factories),
                    start_offsets=start_offsets,
                    erasure_prob=erasure_prob,
                    faults=faults,
                )
            ],
            profile=profile,
        )
