"""Trial-batched synchronous engine: B seeded trials per numpy kernel.

Monte-Carlo campaigns (E1–E3 theorem checks, robustness sweeps) run
dozens-to-hundreds of independent trials of the same experiment. The
process pool (:mod:`repro.sim.parallel`) buys little on small hosts, so
this engine applies the other classic lever — a **batch axis**: one
:class:`BatchedSlottedSimulator` advances ``B`` trials per slot with
``(B, N)``-shaped arrays, and resolves reception for the whole batch
with one :class:`~repro.sim.fast_slotted.SparseReception` scatter call
whose keys carry a per-trial offset. Per-slot cost scales with the
batch's actual transmitters and audibility edges, never O(B·C·N²), and
memory stays O(B·(N + links)).

Determinism contract (pinned by ``tests/test_batched_engine.py``):

* trial ``i`` owns the ``"fast-engine"`` stream of its *own*
  :class:`~repro.sim.rng.RngFactory` — the exact generator the serial
  :class:`~repro.sim.fast_slotted.FastSlottedSimulator` would use — and
  the engine replays the serial engine's per-trial draw sequence
  call-for-call (decision uniforms, channel picks, erasure coins, loss
  coins, including every data-dependent early exit);
* therefore every trial's :class:`~repro.sim.results.DiscoveryResult`
  is **byte-identical to the serial fast engine's**, which makes the
  output independent of the batch size ``B`` by construction — batching
  is a dispatch optimization exactly like worker fan-out, so results
  report the same ``engine: slotted-fast`` metadata and archives never
  encode how trials were grouped.

Fault plans compile per trial (each against its trial's factory, so
fault trajectories match serial runs) and are consulted through the
batched entry points of :class:`~repro.faults.runtime.FaultRuntime`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..net.network import M2HeWNetwork
from .fast_slotted import SparseReception, VectorSchedule
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan
    from ..faults.runtime import FaultRuntime

__all__ = ["BatchedSlottedSimulator"]


class BatchedSlottedSimulator:
    """Vectorized synchronous simulator for a batch of seeded trials.

    Semantics per trial are identical to
    :class:`~repro.sim.fast_slotted.FastSlottedSimulator` (bit-for-bit;
    see the module docstring); ``rng_factories[i]`` seeds trial ``i``.
    All trials share the network, schedule, start offsets, erasure
    probability, fault *plan* (realized independently per trial) and
    the stopping condition — i.e. one experiment's trial campaign.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        schedule: VectorSchedule,
        rng_factories: Sequence[RngFactory],
        start_offsets: Optional[Mapping[int, int]] = None,
        erasure_prob: float = 0.0,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if not rng_factories:
            raise ConfigurationError("batch needs at least one RngFactory")
        if not 0.0 <= erasure_prob < 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1), got {erasure_prob}"
            )
        self._network = network
        self._ids = network.node_ids
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        n = len(self._ids)
        batch = len(rng_factories)
        if schedule.num_nodes != n:
            raise ConfigurationError(
                f"schedule covers {schedule.num_nodes} nodes, network has {n}"
            )
        self._schedule = schedule
        self._erasure_prob = erasure_prob
        self._batch = batch
        self._num_nodes = n
        self._streams = [f.stream("fast-engine") for f in rng_factories]

        # Fault plans realize independently per trial, exactly as the
        # serial engine would with each trial's own factory.
        self._runtimes: Optional[List["FaultRuntime"]] = None
        if faults is not None:
            from ..faults.runtime import compile_plan

            runtimes = [
                compile_plan(faults, network, factory, time_unit="slots")
                for factory in rng_factories
            ]
            if any(rt is not None for rt in runtimes):
                # compile_plan is deterministic in plan triviality, so
                # it returns None for every trial or for none.
                self._runtimes = [rt for rt in runtimes if rt is not None]
        runtimes_list = self._runtimes
        self._has_spectrum = bool(runtimes_list) and runtimes_list[0].has_spectrum
        self._has_churn = bool(runtimes_list) and runtimes_list[0].has_churn
        self._has_loss = bool(runtimes_list) and runtimes_list[0].has_loss

        # Per-trial start offsets (joins fold in per trial, mirroring
        # the serial constructor).
        offsets = dict(start_offsets or {})
        base = np.zeros(n, dtype=np.int64)
        for nid, off in offsets.items():
            if off < 0:
                raise ConfigurationError(
                    f"start offset of node {nid} must be >= 0, got {off}"
                )
            base[self._index[nid]] = int(off)
        self._offsets = np.tile(base, (batch, 1))
        if runtimes_list is not None:
            for b, runtime in enumerate(runtimes_list):
                for i, nid in enumerate(self._ids):
                    join = runtime.join_offset(nid)
                    if join > self._offsets[b, i]:
                        self._offsets[b, i] = join

        # Dense channel indexing shared by every trial (identical to the
        # serial fast engine's).
        universal = sorted(network.universal_channel_set)
        dense_of_channel = {c: k for k, c in enumerate(universal)}
        self._num_dense = len(universal)
        self._sizes = np.array(
            [len(network.channels_of(nid)) for nid in self._ids], dtype=np.int64
        )
        self._chan_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._chan_starts[1:])
        self._chan_flat = np.empty(int(self._chan_starts[-1]), dtype=np.int64)
        for i, nid in enumerate(self._ids):
            chans = sorted(network.channels_of(nid))
            self._chan_flat[self._chan_starts[i] : self._chan_starts[i + 1]] = [
                dense_of_channel[c] for c in chans
            ]
        if runtimes_list is not None:
            for runtime in runtimes_list:
                runtime.bind_dense(self._ids, dense_of_channel, self._num_dense)

        # The sparse reception kernel, shared across trials; per-trial
        # key offsets keep the batch's scatter spaces disjoint.
        self._kernel = SparseReception(network, self._index, universal)

        # Links in network.links() order; coverage is stored per trial
        # as a (B, num_links) row — O(E) per trial, never O(N²).
        self._links = network.links()
        lookup = np.full(n * n, -1, dtype=np.int64)
        for e_i, link in enumerate(self._links):
            tx = self._index[link.transmitter]
            rx = self._index[link.receiver]
            lookup[tx * n + rx] = e_i
        self._link_lookup = lookup
        self._num_links = len(self._links)

        # Per-trial, per-node counters (radio activity + contention);
        # the flat aliases let the hot loop scatter by raveled index.
        self._tx_slots = np.zeros((batch, n), dtype=np.int64)
        self._rx_slots = np.zeros((batch, n), dtype=np.int64)
        self._collisions = np.zeros((batch, n), dtype=np.int64)
        self._clear = np.zeros((batch, n), dtype=np.int64)
        self._collisions_flat = self._collisions.reshape(-1)
        self._clear_flat = self._clear.reshape(-1)

        # Per-slot scratch (allocated once; rows refill under per-trial
        # gating so stale rows are never read where it matters).
        self._uni = np.empty((batch, n), dtype=np.float64)
        self._pick = np.zeros((batch, n), dtype=np.int64)
        self._row_idx = np.arange(n)
        self._trial_idx = np.arange(batch)

        # Fast-path precomputation. Once every node has started (and no
        # churn), the per-slot activity mask is just the live vector;
        # when offset rows coincide across trials (always, unless a
        # future fault model draws per-trial joins) one shared schedule
        # evaluation serves the whole batch.
        self._max_offset = int(self._offsets.max())
        self._chan_base = self._chan_starts[:-1]
        self._span = self._num_dense * n
        self._shared_offsets: Optional[np.ndarray] = (
            self._offsets[0]
            if bool((self._offsets == self._offsets[0]).all())
            else None
        )
        # Homogeneous |A(u)| lets channel picks use a scalar bound —
        # bitstream-identical to the array-bound call (numpy uses the
        # same masked-rejection draw; pinned by a test) but cheaper.
        self._scalar_size: Optional[int] = (
            int(self._sizes[0])
            if bool((self._sizes == self._sizes[0]).all())
            else None
        )
        if self._has_spectrum:
            # Flat (trial, node) base into a raveled (B, N, C) blocked
            # tensor; adding the chosen channel yields gather indices.
            self._spectrum_base = (
                self._trial_idx[:, None] * n + self._row_idx[None, :]
            ) * self._num_dense

    @property
    def batch_size(self) -> int:
        return self._batch

    def run(self, stopping: StoppingCondition) -> List[DiscoveryResult]:
        """Execute all trials; one result per trial, in factory order."""
        budget = stopping.require_slot_budget()
        batch = self._batch
        cov = np.full((batch, self._num_links), -1.0)
        uncovered = np.full(batch, self._num_links, dtype=np.int64)
        slots_executed = np.zeros(batch, dtype=np.int64)
        oracle = stopping.stop_on_full_coverage

        # Liveness bookkeeping happens only when a trial completes
        # (mirrors the serial loop: a completed trial executes no
        # further slots, everyone else runs to the budget).
        live = np.ones(batch, dtype=bool)
        live_list = list(range(batch))
        t = 0
        for t in range(budget):
            completed = self._run_slot(t, live, live_list, cov, uncovered)
            if oracle and completed is not None and completed.size:
                live[completed] = False
                slots_executed[completed] = t + 1
                live_list = np.flatnonzero(live).tolist()
                if not live_list:
                    break
        slots_executed[live] = min(t + 1, budget)

        return [
            self._build_result(b, cov[b], int(slots_executed[b]))
            for b in range(batch)
        ]

    def _run_slot(
        self,
        t: int,
        live: np.ndarray,
        live_list: List[int],
        cov: np.ndarray,
        uncovered: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Advance every live trial one slot; return newly-completed trials."""
        n = self._num_nodes
        streams = self._streams
        runtimes = self._runtimes
        if runtimes is not None:
            from ..faults.runtime import FaultRuntime

            for b in live_list:
                runtimes[b].begin_slot(t)

        # Activity: skip the (B, N) offset comparison once every node
        # has started and churn cannot remove any (the common steady
        # state); ``active is None`` then stands for ``live[:, None]``.
        active: Optional[np.ndarray]
        if runtimes is not None and self._has_churn:
            active = self._offsets <= t
            active &= FaultRuntime.batched_alive_mask(runtimes, t)
            active &= live[:, None]
            act_list = np.flatnonzero(active.any(axis=1)).tolist()
        elif t < self._max_offset:
            active = self._offsets <= t
            active &= live[:, None]
            act_list = np.flatnonzero(active.any(axis=1)).tolist()
        else:
            active = None
            act_list = live_list
        if not act_list:
            return None

        # One shared schedule evaluation when offset rows coincide
        # (p depends only on the local slot and |A(u)|, both shared).
        if self._shared_offsets is not None:
            p = self._schedule.probabilities(t - self._shared_offsets)
        else:
            p = self._schedule.probabilities(t - self._offsets)
        uni = self._uni
        for b in act_list:
            # Same stream, same call shape as the serial engine's
            # `rng.random(n)`; `out=` fills row b without reallocating.
            streams[b].random(out=uni[b])
        transmit = uni < p
        if active is None:
            transmit &= live[:, None]
            listen = ~transmit
            listen &= live[:, None]
        else:
            transmit &= active
            listen = active & ~transmit
        self._tx_slots += transmit
        self._rx_slots += listen

        # Inactive rows never transmit, so no extra `act` mask is needed.
        proceed = transmit.any(axis=1)
        proceed &= listen.any(axis=1)
        proceed_list = np.flatnonzero(proceed).tolist()
        if not proceed_list:
            return None
        pick = self._pick
        if self._scalar_size is not None:
            size = self._scalar_size
            for b in proceed_list:
                pick[b] = streams[b].integers(0, size, n)
        else:
            sizes = self._sizes
            for b in proceed_list:
                pick[b] = streams[b].integers(0, sizes)
        chan = np.take(self._chan_flat, self._chan_base + pick)

        if runtimes is not None and self._has_spectrum:
            from ..faults.runtime import FaultRuntime

            blocked = FaultRuntime.batched_blocked_mask(runtimes)
            suppressed = blocked.reshape(-1)[self._spectrum_base + chan]
            suppressed &= proceed[:, None]
            transmit &= ~suppressed
            listen &= ~suppressed
            proceed &= transmit.any(axis=1)
            proceed &= listen.any(axis=1)
            if not proceed.any():
                return None

        # --- batched sparse reception: one scatter for every trial ---
        # Trials outside `proceed` contribute nothing that matters:
        # their key blocks are disjoint, a transmitter-less trial's
        # listeners read zero counts, a listener-less trial's edges are
        # never queried. So no per-trial re-indexing is needed.
        span = self._span
        chan_flat = chan.reshape(-1)
        tflat = np.flatnonzero(transmit)
        tx_trial = tflat // n
        tv = tflat - tx_trial * n
        lflat = np.flatnonzero(listen)
        l_trial = lflat // n
        lu = lflat - l_trial * n
        counts, senders_at = self._kernel.resolve(
            chan_flat[tflat] * n + tv,
            tx_trial * span,
            tv,
            l_trial * span + chan_flat[lflat] * n + lu,
            self._batch * span,
        )
        self._collisions_flat[lflat[counts >= 2]] += 1
        sel = np.flatnonzero(counts == 1)
        self._clear_flat[lflat[sel]] += 1
        if not sel.size:
            return None

        # --- delivery. np.flatnonzero emits listeners trial-major, so
        # the clear receptions are already grouped by trial in ascending
        # order — exactly the order the serial loop would process them.
        if self._erasure_prob > 0.0:
            # Erasure coins must come from each trial's own stream, one
            # `random(count)` call per trial with clear receptions —
            # call-for-call what the serial engine draws.
            clear_trials = l_trial[sel]
            bounds = np.flatnonzero(np.diff(clear_trials)) + 1
            segs = np.concatenate(([0], bounds, [clear_trials.size]))
            keep = np.empty(clear_trials.size, dtype=bool)
            for s0, s1 in zip(segs[:-1], segs[1:]):
                keep[s0:s1] = (
                    streams[int(clear_trials[s0])].random(s1 - s0)
                    >= self._erasure_prob
                )
            sel = sel[keep]
            if sel.size == 0:
                return None
        trial_ids = l_trial[sel]
        senders_all = senders_at[sel]
        receivers_all = lu[sel]

        if runtimes is not None and self._has_loss:
            from ..faults.runtime import FaultRuntime

            keep = FaultRuntime.batched_keep_mask(
                runtimes,
                trial_ids,
                senders_all,
                receivers_all,
                float(t),
                streams,
            )
            trial_ids = trial_ids[keep]
            senders_all = senders_all[keep]
            receivers_all = receivers_all[keep]
            if trial_ids.size == 0:
                return None

        link_ids = self._link_lookup[senders_all * n + receivers_all]
        flat = trial_ids * self._num_links + link_ids
        cov_flat = cov.reshape(-1)
        fresh = cov_flat[flat] < 0
        if not fresh.any():
            return None
        cov_flat[flat[fresh]] = float(t)
        dec = np.bincount(trial_ids[fresh], minlength=self._batch)
        uncovered -= dec
        done = np.flatnonzero((dec > 0) & (uncovered == 0))
        return done if done.size else None

    def _build_result(
        self, b: int, cov_row: np.ndarray, slots_executed: int
    ) -> DiscoveryResult:
        coverage: Dict[Tuple[int, int], Optional[float]] = {}
        tables: Dict[int, Dict[int, frozenset]] = {nid: {} for nid in self._ids}
        for e_i, link in enumerate(self._links):
            t = cov_row[e_i]
            coverage[link.key] = None if t < 0 else float(t)
            if t >= 0:
                tables[link.receiver][link.transmitter] = link.span
        completed = all(v is not None for v in coverage.values())
        # "slotted-fast", not a distinct label: a batched trial is
        # defined to be indistinguishable from a serial fast-engine
        # trial, and archives never record dispatch choices (same rule
        # as worker-count invariance in repro.sim.parallel).
        metadata: Dict[str, object] = {
            "engine": "slotted-fast",
            "erasure_prob": self._erasure_prob,
            "radio_activity": {
                nid: {
                    "tx": int(self._tx_slots[b, self._index[nid]]),
                    "rx": int(self._rx_slots[b, self._index[nid]]),
                    "quiet": 0,
                }
                for nid in self._ids
            },
            "collisions": {
                nid: int(self._collisions[b, self._index[nid]])
                for nid in self._ids
            },
            "clear_receptions": {
                nid: int(self._clear[b, self._index[nid]])
                for nid in self._ids
            },
        }
        if self._runtimes is not None:
            metadata["faults"] = self._runtimes[b].describe()
        return DiscoveryResult(
            time_unit="slots",
            coverage=coverage,
            horizon=float(slots_executed),
            completed=completed,
            neighbor_tables=tables,
            start_times={
                nid: float(self._offsets[b, self._index[nid]])
                for nid in self._ids
            },
            network_params=self._network.parameter_summary(),
            metadata=metadata,
        )
