"""High-level experiment runners.

These helpers assemble network + protocol + engine + stopping condition
from plain parameters, so experiments, examples and the CLI never touch
engine internals. Multi-trial helpers derive independent per-trial seeds
from one base seed (fully reproducible sweeps).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.registry import (
    ASYNCHRONOUS_PROTOCOLS,
    BATCHED_PROTOCOLS,
    SYNCHRONOUS_PROTOCOLS,
    VECTORIZED_PROTOCOLS,
    make_async_factory,
    make_sync_factory,
    protocol_spec,
)
from ..core.robust import CONTENTION_MARGIN, DEFAULT_LOSS_EST, repeat_for_loss
from ..exceptions import ConfigurationError
from ..net.network import M2HeWNetwork
from .async_engine import AsyncSimulator
from .clock import (
    Clock,
    ConstantDriftClock,
    PerfectClock,
    RandomWalkDriftClock,
    SinusoidalDriftClock,
)
from .fast_slotted import (
    FastSlottedSimulator,
    FlatSchedule,
    GrowingEstimateSchedule,
    RepeatedStagedSchedule,
    StagedSchedule,
    VectorSchedule,
)
from .results import DiscoveryResult
from .rng import RngFactory, SeedLike, derive_trial_seed
from .slotted import SlottedSimulator
from .stopping import StoppingCondition
from .trace import ExecutionTrace

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan

#: What the runners accept for ``faults``: a plan, its archived dict
#: form (replay), or nothing.
FaultsLike = Union["FaultPlan", Mapping[str, Any], None]

__all__ = [
    "CLOCK_MODELS",
    "FaultsLike",
    "GridEntry",
    "SYNC_PROTOCOLS",
    "VECTORIZED_SYNC_PROTOCOLS",
    "experiment_runner_params",
    "grid_batchable",
    "run_synchronous",
    "run_asynchronous",
    "run_experiment_trial",
    "run_experiment_grid_batched",
    "run_experiment_trials_batched",
    "replay_trial",
    "run_trials",
    "make_clocks",
    "random_start_offsets",
]

CLOCK_MODELS = ("perfect", "constant", "random_walk", "sinusoidal")

#: Every registered synchronous protocol — the set batch campaigns and
#: the tournament accept (plus ``algorithm4`` for asynchronous runs).
#: Derived from the registry's :data:`~repro.core.registry.PROTOCOL_SPECS`.
SYNC_PROTOCOLS = SYNCHRONOUS_PROTOCOLS

#: The subset with a vectorized schedule — what ``engine="fast"`` (and
#: ``engine="auto"``'s fast path) can take.
VECTORIZED_SYNC_PROTOCOLS = VECTORIZED_PROTOCOLS


def _vector_schedule(
    name: str, network: M2HeWNetwork, delta_est: Optional[int]
) -> VectorSchedule:
    sizes = np.array(
        [len(network.channels_of(nid)) for nid in network.node_ids], dtype=np.int64
    )
    if name == "algorithm1":
        if delta_est is None:
            raise ConfigurationError("algorithm1 requires delta_est")
        return StagedSchedule(sizes, delta_est)
    if name == "algorithm2":
        return GrowingEstimateSchedule(sizes)
    if name == "algorithm3":
        if delta_est is None:
            raise ConfigurationError("algorithm3 requires delta_est")
        return FlatSchedule(sizes, delta_est)
    if name == "robust_staged":
        if delta_est is None:
            raise ConfigurationError("robust_staged requires delta_est")
        return RepeatedStagedSchedule(
            sizes, delta_est, repeat_for_loss(DEFAULT_LOSS_EST)
        )
    if name == "robust_flat":
        if delta_est is None:
            raise ConfigurationError("robust_flat requires delta_est")
        # Same derated probability the protocol class computes:
        # min(1/2, |A(u)| / (CONTENTION_MARGIN · Δ_est)).
        return FlatSchedule(sizes, CONTENTION_MARGIN * delta_est)
    raise ConfigurationError(
        f"protocol {name!r} has no vectorized schedule; use engine='reference'"
    )


def _resolve_faults(faults: FaultsLike) -> Optional["FaultPlan"]:
    if faults is None:
        return None
    from ..faults.serialization import as_fault_plan

    return as_fault_plan(faults)


def run_synchronous(
    network: M2HeWNetwork,
    protocol: str,
    *,
    seed: SeedLike,
    max_slots: int,
    delta_est: Optional[int] = None,
    start_offsets: Optional[Mapping[int, int]] = None,
    engine: str = "auto",
    erasure_prob: float = 0.0,
    stop_on_full_coverage: bool = True,
    universal_channels: Optional[Sequence[int]] = None,
    id_space_size: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    faults: FaultsLike = None,
) -> DiscoveryResult:
    """Run one synchronous discovery trial.

    Args:
        network: The network instance.
        protocol: Any name in :data:`SYNC_PROTOCOLS`.
        seed: Trial seed (int or SeedSequence).
        max_slots: Hard slot budget.
        delta_est: Degree bound for the protocols that need one.
        start_offsets: Per-node start slots (variable start times).
        engine: ``"fast"`` (numpy; vectorized protocols only),
            ``"reference"`` (object-per-node; any protocol), or
            ``"auto"`` — fast when the registry says the protocol is
            vectorized and no trace is requested, reference otherwise.
        erasure_prob: Unreliable-channel loss probability.
        stop_on_full_coverage: Oracle early stop.
        universal_channels / id_space_size: Baseline parameters.
        trace: Optional slot trace (reference engine only).
        faults: Optional fault plan (or its archived dict form); trivial
            plans leave the run bit-identical to a fault-free one.
    """
    fault_plan = _resolve_faults(faults)
    rng_factory = RngFactory(seed)
    stopping = StoppingCondition(
        max_slots=max_slots, stop_on_full_coverage=stop_on_full_coverage
    )
    if engine == "auto":
        engine = (
            "fast"
            if protocol in VECTORIZED_PROTOCOLS and trace is None
            else "reference"
        )
    if engine == "fast":
        if trace is not None:
            raise ConfigurationError("the fast engine does not record traces")
        schedule = _vector_schedule(protocol, network, delta_est)
        sim = FastSlottedSimulator(
            network,
            schedule,
            rng_factory,
            start_offsets=start_offsets,
            erasure_prob=erasure_prob,
            faults=fault_plan,
        )
        result = sim.run(stopping)
    elif engine == "reference":
        factory = make_sync_factory(
            protocol,
            delta_est=delta_est,
            universal_channels=universal_channels,
            id_space_size=id_space_size,
        )
        sim = SlottedSimulator(
            network,
            factory,
            rng_factory,
            start_offsets=start_offsets,
            erasure_prob=erasure_prob,
            trace=trace,
            faults=fault_plan,
        )
        result = sim.run(stopping)
    else:
        raise ConfigurationError(
            f"unknown engine {engine!r}; use 'auto', 'fast' or 'reference'"
        )
    result.metadata["protocol"] = protocol
    result.metadata["delta_est"] = delta_est
    return result


def experiment_runner_params(
    protocol: str,
    network: M2HeWNetwork,
    *,
    delta_est: Optional[int],
    max_slots: int,
    faults: FaultsLike = None,
) -> Dict[str, Any]:
    """Uniform ``runner_params`` for one synchronous campaign cell.

    Fills exactly the parameters the registry says ``protocol`` needs —
    the degree bound, the agreed universal channel set, the id-space
    size — reading the latter two off the network at hand. Campaign and
    tournament code can therefore loop over any mix of registered
    synchronous protocols with one call site per cell.
    """
    spec = protocol_spec(protocol)
    if spec.kind != "sync":
        raise ConfigurationError(
            "experiment_runner_params covers synchronous protocols, got "
            f"{protocol!r}"
        )
    params: Dict[str, Any] = {
        "max_slots": max_slots,
        "delta_est": delta_est if spec.needs_delta_est else None,
    }
    if spec.needs_universal:
        params["universal_channels"] = sorted(network.universal_channel_set)
    if spec.needs_id_space:
        params["id_space_size"] = max(network.node_ids) + 1
    if faults is not None:
        params["faults"] = faults
    return params


def make_clocks(
    network: M2HeWNetwork,
    model: str,
    drift_bound: float,
    rng: np.random.Generator,
    mean_segment: float = 10.0,
    period: float = 50.0,
) -> Dict[int, Clock]:
    """Per-node clocks under a named drift model.

    * ``perfect`` — ideal clocks;
    * ``constant`` — each node a fixed drift drawn uniformly from
      ``[−δ, +δ]`` (worst pairs: one fast, one slow);
    * ``random_walk`` — rate re-drawn at exponential intervals;
    * ``sinusoidal`` — rate ``1 + δ·cos``, random phase per node.
    """
    if model not in CLOCK_MODELS:
        raise ConfigurationError(
            f"unknown clock model {model!r}; choose from {CLOCK_MODELS}"
        )
    clocks: Dict[int, Clock] = {}
    for nid in network.node_ids:
        offset = float(rng.uniform(0.0, 1000.0))
        if model == "perfect" or drift_bound == 0.0:
            clocks[nid] = PerfectClock(offset=offset)
        elif model == "constant":
            drift = float(rng.uniform(-drift_bound, drift_bound))
            clocks[nid] = ConstantDriftClock(
                drift, offset=offset, drift_bound=drift_bound
            )
        elif model == "random_walk":
            clocks[nid] = RandomWalkDriftClock(
                drift_bound, rng, mean_segment=mean_segment, offset=offset
            )
        else:
            clocks[nid] = SinusoidalDriftClock(
                drift_bound,
                period=period,
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
                offset=offset,
            )
    return clocks


def run_asynchronous(
    network: M2HeWNetwork,
    *,
    seed: SeedLike,
    delta_est: int,
    frame_length: float = 1.0,
    max_frames_per_node: Optional[int] = None,
    max_real_time: Optional[float] = None,
    drift_bound: float = 0.0,
    clock_model: str = "constant",
    start_spread: float = 0.0,
    erasure_prob: float = 0.0,
    stop_on_full_coverage: bool = True,
    trace: Optional[ExecutionTrace] = None,
    faults: FaultsLike = None,
) -> DiscoveryResult:
    """Run one asynchronous (Algorithm 4) discovery trial.

    Args:
        network: The network instance.
        seed: Trial seed.
        delta_est: Degree bound for Algorithm 4.
        frame_length: ``L`` in local time units.
        max_frames_per_node: Stop once every node ran this many full
            frames after ``T_s`` (Theorem 9's horizon).
        max_real_time: Hard real-time cap.
        drift_bound: ``δ`` for the clock model.
        clock_model: One of ``perfect|constant|random_walk|sinusoidal``.
        start_spread: Node start times drawn uniformly from
            ``[0, start_spread]`` (0 = simultaneous).
        erasure_prob: Unreliable-channel loss probability.
        stop_on_full_coverage: Oracle early stop.
        trace: Optional frame trace for alignment analysis.
        faults: Optional fault plan (or its archived dict form); trivial
            plans leave the run bit-identical to a fault-free one.
    """
    if start_spread < 0:
        raise ConfigurationError(f"start_spread must be >= 0, got {start_spread}")
    fault_plan = _resolve_faults(faults)
    rng_factory = RngFactory(seed)
    env_rng = rng_factory.stream("environment")
    clocks = make_clocks(network, clock_model, drift_bound, env_rng)
    starts = {
        nid: float(env_rng.uniform(0.0, start_spread)) if start_spread > 0 else 0.0
        for nid in network.node_ids
    }
    sim = AsyncSimulator(
        network,
        make_async_factory("algorithm4", delta_est=delta_est),
        rng_factory,
        frame_length=frame_length,
        clocks=clocks,
        start_times=starts,
        erasure_prob=erasure_prob,
        trace=trace,
        faults=fault_plan,
    )
    stopping = StoppingCondition(
        max_real_time=max_real_time,
        max_frames_per_node=max_frames_per_node,
        stop_on_full_coverage=stop_on_full_coverage,
    )
    result = sim.run(stopping)
    result.metadata["protocol"] = "algorithm4"
    result.metadata["delta_est"] = delta_est
    result.metadata["drift_bound"] = drift_bound
    result.metadata["clock_model"] = clock_model
    return result


def run_experiment_trial(
    network: M2HeWNetwork,
    protocol: str,
    *,
    seed: SeedLike,
    runner_params: Optional[Mapping[str, Any]] = None,
) -> DiscoveryResult:
    """Run one trial of a batch experiment (any protocol, default budgets).

    The single code path behind both the serial and the process-pool
    campaign executors: given the same ``(network, protocol, seed,
    runner_params)`` it must produce bit-identical results wherever it
    runs, which is what makes ``run_batch`` worker-count invariant.
    """
    params: Dict[str, Any] = dict(runner_params or {})
    if protocol in SYNC_PROTOCOLS:
        params.setdefault("max_slots", 200_000)
        return run_synchronous(network, protocol, seed=seed, **params)
    if protocol in ASYNCHRONOUS_PROTOCOLS:
        if "max_frames_per_node" not in params and "max_real_time" not in params:
            params["max_frames_per_node"] = 200_000
        return run_asynchronous(network, seed=seed, **params)
    raise ConfigurationError(
        f"unknown protocol {protocol!r} for batch experiments"
    )


def replay_trial(
    network: M2HeWNetwork,
    protocol: str,
    *,
    base_seed: Optional[int],
    trial_index: int,
    runner_params: Optional[Mapping[str, Any]] = None,
) -> DiscoveryResult:
    """Re-run one campaign trial from its replay coordinates, in-process.

    The replay contract: every :class:`~repro.exceptions.TrialExecutionError`
    (and every quarantine record in a campaign manifest) carries the
    campaign ``base_seed`` and the failing trial indices — this function
    turns those coordinates back into the exact trial, because trial
    ``t`` always runs from ``derive_trial_seed(base_seed, t)`` no matter
    which worker, backend or retry attempt originally dispatched it.
    """
    return run_experiment_trial(
        network,
        protocol,
        seed=derive_trial_seed(base_seed, trial_index),
        runner_params=runner_params,
    )


#: ``runner_params`` keys the batched engine can honor directly; any
#: other key (tracing, baseline parameters, …) routes the group through
#: the serial trial loop instead.
_BATCHABLE_PARAMS = frozenset(
    {
        "max_slots",
        "delta_est",
        "start_offsets",
        "erasure_prob",
        "stop_on_full_coverage",
        "engine",
        "faults",
    }
)


def run_experiment_trials_batched(
    network: M2HeWNetwork,
    protocol: str,
    seeds: Sequence[np.random.SeedSequence],
    *,
    runner_params: Optional[Mapping[str, Any]] = None,
) -> List[DiscoveryResult]:
    """Run a group of batch-experiment trials, vectorized when possible.

    Eligible campaigns — a protocol the registry marks ``batched``, on
    the fast/auto engine, with only :data:`_BATCHABLE_PARAMS`
    parameters — execute as one
    :class:`~repro.sim.batched.BatchedSlottedSimulator` batch; anything
    else (``algorithm4``, non-vectorized rivals like ``mcdis``,
    ``engine="reference"``, traces, baseline parameters) falls back to
    the serial :func:`run_experiment_trial` loop. Either way trial
    ``i``'s result is byte-identical to the serial path, so callers may
    group seeds freely — the grouping invariance
    ``run_batch(backend="vectorized")`` pins with tests.
    """
    from .batched import BatchedSlottedSimulator

    seed_list = list(seeds)
    params: Dict[str, Any] = dict(runner_params or {})
    if not grid_batchable(protocol, params) or not seed_list:
        return [
            run_experiment_trial(
                network, protocol, seed=s, runner_params=runner_params
            )
            for s in seed_list
        ]
    params.setdefault("max_slots", 200_000)
    schedule = _vector_schedule(protocol, network, params.get("delta_est"))
    sim = BatchedSlottedSimulator(
        network,
        schedule,
        [RngFactory(s) for s in seed_list],
        start_offsets=params.get("start_offsets"),
        erasure_prob=params.get("erasure_prob", 0.0),
        faults=_resolve_faults(params.get("faults")),
    )
    stopping = StoppingCondition(
        max_slots=params["max_slots"],
        stop_on_full_coverage=params.get("stop_on_full_coverage", True),
    )
    results = sim.run(stopping)
    for result in results:
        result.metadata["protocol"] = protocol
        result.metadata["delta_est"] = params.get("delta_est")
    return results


#: One spec point of a grid batch: ``(protocol, per-trial seeds,
#: runner_params)`` — the same coordinates
#: :func:`run_experiment_trials_batched` takes, carried per entry.
GridEntry = Tuple[
    str, Sequence[np.random.SeedSequence], Optional[Mapping[str, Any]]
]


def grid_batchable(
    protocol: str, runner_params: Optional[Mapping[str, Any]] = None
) -> bool:
    """Whether one spec point is eligible for the batched/grid kernel.

    The same eligibility rule :func:`run_experiment_trials_batched`
    applies per group: a protocol the registry marks ``batched``, on the
    fast/auto engine, with only :data:`_BATCHABLE_PARAMS` parameters.
    Exposed so campaign layers can decide *before* dispatch whether spec
    points may fuse into one grid.
    """
    params = dict(runner_params or {})
    return (
        protocol in BATCHED_PROTOCOLS
        and params.get("engine", "auto") in ("auto", "fast")
        and set(params) <= _BATCHABLE_PARAMS
    )


def run_experiment_grid_batched(
    network: M2HeWNetwork,
    entries: Sequence[GridEntry],
    *,
    profile: bool = False,
) -> List[List[DiscoveryResult]]:
    """Run several spec points' trial groups, fused into grid batches.

    Each entry is one experiment cell — ``(protocol, seeds,
    runner_params)`` on the shared ``network``. Entries that are
    grid-eligible (:func:`grid_batchable`) and share a stopping
    condition (``max_slots`` + ``stop_on_full_coverage``) advance
    together in one :class:`~repro.sim.batched.GridBatchedSimulator`
    kernel pass; everything else falls back to
    :func:`run_experiment_trials_batched` per entry. Either way entry
    ``j``'s results are byte-identical to running it alone — grid
    fusion is a dispatch optimization, invariant by construction, and
    the differential tests pin it across G and B.

    Returns one result list per entry, in entry order.
    """
    from .batched import GridBatchedSimulator, GridCell

    results: List[Optional[List[DiscoveryResult]]] = [None] * len(entries)
    groups: Dict[Tuple[int, bool], List[int]] = {}
    for j, (protocol, seeds, runner_params) in enumerate(entries):
        params = dict(runner_params or {})
        if not grid_batchable(protocol, params) or not list(seeds):
            results[j] = run_experiment_trials_batched(
                network, protocol, seeds, runner_params=runner_params
            )
            continue
        key = (
            int(params.get("max_slots", 200_000)),
            bool(params.get("stop_on_full_coverage", True)),
        )
        groups.setdefault(key, []).append(j)

    for (max_slots, stop_oracle), indices in groups.items():
        cells = []
        for j in indices:
            protocol, seeds, runner_params = entries[j]
            params = dict(runner_params or {})
            cells.append(
                GridCell(
                    schedule=_vector_schedule(
                        protocol, network, params.get("delta_est")
                    ),
                    # Seed-aware through `entries`: every factory is
                    # built from a caller-supplied SeedSequence, D105
                    # just cannot see through the tuple.
                    rng_factories=[RngFactory(s) for s in seeds],  # lint: disable=D105
                    start_offsets=params.get("start_offsets"),
                    erasure_prob=params.get("erasure_prob", 0.0),
                    faults=_resolve_faults(params.get("faults")),
                )
            )
        sim = GridBatchedSimulator(network, cells, profile=profile)
        stopping = StoppingCondition(
            max_slots=max_slots, stop_on_full_coverage=stop_oracle
        )
        flat = sim.run(stopping)
        for g, j in enumerate(indices):
            sl = sim.cell_slices[g]
            cell_results = flat[sl.start : sl.stop]
            protocol, _, runner_params = entries[j]
            params = dict(runner_params or {})
            for result in cell_results:
                result.metadata["protocol"] = protocol
                result.metadata["delta_est"] = params.get("delta_est")
            results[j] = cell_results
    return [group if group is not None else [] for group in results]


def run_trials(
    trial_fn: Callable[[np.random.SeedSequence], DiscoveryResult],
    num_trials: int,
    base_seed: Optional[int],
) -> List[DiscoveryResult]:
    """Run ``trial_fn`` for ``num_trials`` independent derived seeds."""
    if num_trials <= 0:
        raise ConfigurationError(f"num_trials must be positive, got {num_trials}")
    return [
        trial_fn(derive_trial_seed(base_seed, i)) for i in range(num_trials)
    ]


def random_start_offsets(
    network: M2HeWNetwork,
    max_offset: int,
    rng: np.random.Generator,
) -> Dict[int, int]:
    """Uniform random start slots in ``[0, max_offset]`` per node."""
    if max_offset < 0:
        raise ConfigurationError(f"max_offset must be >= 0, got {max_offset}")
    return {
        nid: int(rng.integers(0, max_offset + 1)) for nid in network.node_ids
    }
