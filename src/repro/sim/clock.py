"""Drifting-clock models for the asynchronous system (paper §II).

A clock ``C`` maps real time ``t`` to local time ``C(t)``. The paper
assumes only that the drift rate ``dC/dt − 1`` is bounded in magnitude
by ``δ`` (eq. (1)):

    ``(1 − δ)·Δt <= C(t + Δt) − C(t) <= (1 + δ)·Δt``

Drift may vary over time in both magnitude and sign, and offsets between
clocks are arbitrary. The models here realize increasingly adversarial
instances of that assumption:

* :class:`PerfectClock` — ``δ = 0`` plus an arbitrary offset;
* :class:`ConstantDriftClock` — fixed rate ``1 + d``, ``|d| <= δ``;
* :class:`PiecewiseDriftClock` — explicit rate segments (used to build
  the adversarial schedules in Lemma 7's tightness experiments);
* :class:`SinusoidalDriftClock` — smoothly oscillating rate
  ``1 + δ·cos(ωt + φ)``;
* :class:`RandomWalkDriftClock` — rate re-drawn uniformly from
  ``[1−δ, 1+δ]`` at random intervals (lazily extended).

All clocks are strictly increasing and invertible; the asynchronous
engine schedules a node's next frame boundary at
``real_from_local(local_boundary)``.
"""

from __future__ import annotations

import abc
import bisect
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ClockModelError

__all__ = [
    "Clock",
    "PerfectClock",
    "ConstantDriftClock",
    "PiecewiseDriftClock",
    "SinusoidalDriftClock",
    "RandomWalkDriftClock",
    "check_drift_bound",
]


class Clock(abc.ABC):
    """A strictly increasing mapping between real and local time."""

    def __init__(self, drift_bound: float) -> None:
        if drift_bound < 0 or drift_bound >= 1:
            raise ClockModelError(
                f"drift bound must be in [0, 1), got {drift_bound}"
            )
        self._drift_bound = float(drift_bound)

    @property
    def drift_bound(self) -> float:
        """``δ`` — bound on the magnitude of this clock's drift rate."""
        return self._drift_bound

    @abc.abstractmethod
    def local_from_real(self, real: float) -> float:
        """``C(t)`` — local time at real time ``real`` (``real >= 0``)."""

    @abc.abstractmethod
    def real_from_local(self, local: float) -> float:
        """Inverse mapping: the real time at which the clock reads ``local``."""

    def elapsed_local(self, real_start: float, real_end: float) -> float:
        """Local time elapsed between two real instants."""
        return self.local_from_real(real_end) - self.local_from_real(real_start)


class PerfectClock(Clock):
    """An ideal clock: ``C(t) = offset + t``."""

    def __init__(self, offset: float = 0.0) -> None:
        super().__init__(0.0)
        self._offset = float(offset)

    def local_from_real(self, real: float) -> float:
        return self._offset + real

    def real_from_local(self, local: float) -> float:
        return local - self._offset


class ConstantDriftClock(Clock):
    """``C(t) = offset + (1 + drift)·t`` with ``|drift| <= drift_bound``."""

    def __init__(
        self,
        drift: float,
        offset: float = 0.0,
        drift_bound: Optional[float] = None,
    ) -> None:
        bound = abs(drift) if drift_bound is None else drift_bound
        super().__init__(bound)
        if abs(drift) > self.drift_bound + 1e-15:
            raise ClockModelError(
                f"drift {drift} exceeds declared bound {self.drift_bound}"
            )
        self._rate = 1.0 + float(drift)
        self._offset = float(offset)

    @property
    def rate(self) -> float:
        """``dC/dt = 1 + drift``."""
        return self._rate

    def local_from_real(self, real: float) -> float:
        return self._offset + self._rate * real

    def real_from_local(self, local: float) -> float:
        return (local - self._offset) / self._rate


class PiecewiseDriftClock(Clock):
    """Piecewise-constant drift rate over explicit real-time segments.

    Args:
        breakpoints: Real times ``0 = t_0 < t_1 < …`` where the rate
            changes (the leading 0 is implicit; do not include it).
        rates: ``len(breakpoints) + 1`` clock rates (``1 + drift``), one
            per segment; each must satisfy ``|rate − 1| <= drift_bound``.
        offset: Local time at real time 0.
        drift_bound: Declared ``δ``; defaults to the max observed drift.
    """

    def __init__(
        self,
        breakpoints: Sequence[float],
        rates: Sequence[float],
        offset: float = 0.0,
        drift_bound: Optional[float] = None,
    ) -> None:
        if len(rates) != len(breakpoints) + 1:
            raise ClockModelError(
                f"need len(rates) == len(breakpoints) + 1, got "
                f"{len(rates)} rates for {len(breakpoints)} breakpoints"
            )
        bps = [float(b) for b in breakpoints]
        if any(b <= 0 for b in bps[:1]) or any(
            b2 <= b1 for b1, b2 in zip(bps, bps[1:])
        ):
            raise ClockModelError(
                f"breakpoints must be positive and strictly increasing: {bps}"
            )
        max_drift = max(abs(r - 1.0) for r in rates)
        bound = max_drift if drift_bound is None else drift_bound
        super().__init__(bound)
        if max_drift > self.drift_bound + 1e-15:
            raise ClockModelError(
                f"max drift {max_drift} exceeds declared bound {self.drift_bound}"
            )
        if any(r <= 0 for r in rates):
            raise ClockModelError(f"rates must be positive: {list(rates)}")

        self._starts = [0.0] + bps  # real start of each segment
        self._rates = [float(r) for r in rates]
        self._locals = [float(offset)]  # local time at each segment start
        for (t1, t2), rate in zip(zip(self._starts, self._starts[1:]), self._rates):
            self._locals.append(self._locals[-1] + rate * (t2 - t1))

    def local_from_real(self, real: float) -> float:
        if real < 0:
            raise ClockModelError(f"real time must be >= 0, got {real}")
        i = bisect.bisect_right(self._starts, real) - 1
        return self._locals[i] + self._rates[i] * (real - self._starts[i])

    def real_from_local(self, local: float) -> float:
        if local < self._locals[0]:
            raise ClockModelError(
                f"local time {local} precedes clock origin {self._locals[0]}"
            )
        i = bisect.bisect_right(self._locals, local) - 1
        i = min(i, len(self._rates) - 1)
        return self._starts[i] + (local - self._locals[i]) / self._rates[i]


class SinusoidalDriftClock(Clock):
    """Smoothly oscillating drift: ``dC/dt = 1 + δ·cos(ωt + φ)``.

    ``C(t) = offset + t + (δ/ω)·(sin(ωt + φ) − sin(φ))`` with
    ``ω = 2π / period``. The inverse is computed by bisection (the map is
    strictly increasing since ``δ < 1``).
    """

    def __init__(
        self,
        amplitude: float,
        period: float,
        phase: float = 0.0,
        offset: float = 0.0,
    ) -> None:
        super().__init__(amplitude)
        if period <= 0:
            raise ClockModelError(f"period must be positive, got {period}")
        self._amp = float(amplitude)
        self._omega = 2.0 * math.pi / float(period)
        self._phase = float(phase)
        self._offset = float(offset)

    def local_from_real(self, real: float) -> float:
        if real < 0:
            raise ClockModelError(f"real time must be >= 0, got {real}")
        wobble = (self._amp / self._omega) * (
            math.sin(self._omega * real + self._phase) - math.sin(self._phase)
        )
        return self._offset + real + wobble

    def real_from_local(self, local: float) -> float:
        # |C(t) − (offset + t)| <= 2δ/ω, so the root is bracketed here.
        slack = 2.0 * self._amp / self._omega + 1e-9
        target = local
        lo = local - self._offset - slack
        hi = local - self._offset + slack
        lo = max(lo, 0.0) if target >= self.local_from_real(0.0) else 0.0
        if self.local_from_real(lo) > target + 1e-12:
            raise ClockModelError(
                f"local time {local} precedes clock origin"
            )
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.local_from_real(mid) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * max(1.0, abs(target)):
                break
        return 0.5 * (lo + hi)


class RandomWalkDriftClock(Clock):
    """Drift rate re-drawn uniformly from ``[−δ, +δ]`` at random times.

    Segment lengths are exponential with mean ``mean_segment``. Segments
    are generated lazily from ``rng`` as queries extend the horizon, so
    the clock can run for an unbounded simulated duration.
    """

    def __init__(
        self,
        drift_bound: float,
        rng: np.random.Generator,
        mean_segment: float = 10.0,
        offset: float = 0.0,
    ) -> None:
        super().__init__(drift_bound)
        if mean_segment <= 0:
            raise ClockModelError(
                f"mean_segment must be positive, got {mean_segment}"
            )
        self._rng = rng
        self._mean_segment = float(mean_segment)
        self._starts: List[float] = [0.0]
        self._locals: List[float] = [float(offset)]
        self._rates: List[float] = [self._draw_rate()]
        self._horizon = 0.0  # real end of the last closed segment

    def _draw_rate(self) -> float:
        return 1.0 + float(self._rng.uniform(-self.drift_bound, self.drift_bound))

    def _extend_to_real(self, real: float) -> None:
        while self._horizon + self._next_len_peek() <= real:
            seg = self._next_len()
            start = self._starts[-1]
            self._locals.append(self._locals[-1] + self._rates[-1] * seg)
            self._starts.append(start + seg)
            self._rates.append(self._draw_rate())
            self._horizon = self._starts[-1]

    # Exponential draws are consumed one at a time; peek draws and caches
    # so that _extend_to_real's loop condition does not burn randomness.
    _pending_len: Optional[float] = None

    def _next_len_peek(self) -> float:
        if self._pending_len is None:
            self._pending_len = float(
                self._rng.exponential(self._mean_segment)
            ) or self._mean_segment
        return self._pending_len

    def _next_len(self) -> float:
        value = self._next_len_peek()
        self._pending_len = None
        return value

    def local_from_real(self, real: float) -> float:
        if real < 0:
            raise ClockModelError(f"real time must be >= 0, got {real}")
        self._extend_to_real(real)
        i = bisect.bisect_right(self._starts, real) - 1
        return self._locals[i] + self._rates[i] * (real - self._starts[i])

    def real_from_local(self, local: float) -> float:
        if local < self._locals[0]:
            raise ClockModelError(
                f"local time {local} precedes clock origin {self._locals[0]}"
            )
        # Extend until the last segment's start covers `local`; rates are
        # at least 1 − δ > 0 so local time grows without bound.
        while self._locals[-1] < local:
            self._extend_to_real(self._horizon + self._next_len_peek() + 1.0)
        i = bisect.bisect_right(self._locals, local) - 1
        i = min(i, len(self._rates) - 1)
        return self._starts[i] + (local - self._locals[i]) / self._rates[i]


def check_drift_bound(
    clock: Clock,
    horizon: float,
    samples: int = 1000,
    tolerance: float = 1e-9,
) -> None:
    """Empirically verify eq. (1) on ``[0, horizon]``; raise on violation.

    Checks ``(1−δ)Δt <= C(t+Δt) − C(t) <= (1+δ)Δt`` over a grid of
    sampled interval endpoints. Used by tests and by the engine's
    optional paranoia mode.
    """
    if horizon <= 0:
        raise ClockModelError(f"horizon must be positive, got {horizon}")
    if samples < 2:
        raise ClockModelError(f"need at least 2 samples, got {samples}")
    delta = clock.drift_bound
    times = [horizon * i / (samples - 1) for i in range(samples)]
    values = [clock.local_from_real(t) for t in times]
    for (t1, c1), (t2, c2) in zip(zip(times, values), zip(times[1:], values[1:])):
        dt = t2 - t1
        dc = c2 - c1
        if dc < (1 - delta) * dt - tolerance or dc > (1 + delta) * dt + tolerance:
            raise ClockModelError(
                f"drift bound {delta} violated on [{t1}, {t2}]: "
                f"elapsed local {dc} for elapsed real {dt}"
            )
