"""Simulation substrate: engines, clocks, medium, results, runners."""

from __future__ import annotations

from .async_engine import AsyncSimulator
from .batch import BatchOutcome, ExperimentSpec, run_batch
from .batched import BatchedSlottedSimulator, GridBatchedSimulator, GridCell
from .clock import (
    Clock,
    ConstantDriftClock,
    PerfectClock,
    PiecewiseDriftClock,
    RandomWalkDriftClock,
    SinusoidalDriftClock,
    check_drift_bound,
)
from .engine import DiscreteEventEngine
from .events import Event, EventQueue
from .fast_slotted import (
    FastSlottedSimulator,
    FlatSchedule,
    GrowingEstimateSchedule,
    SparseReception,
    StagedSchedule,
    VectorSchedule,
)
from .medium import Medium, Transmission
from .parallel import (
    ParallelPlan,
    resolve_plan,
    run_grid_spec_trials,
    run_spec_trials,
)
from .profile import SlotProfiler
from .results import DiscoveryResult, load_result, result_from_dict
from .rng import RngFactory, derive_trial_seed, make_generator, spawn_generators
from .runner import (
    make_clocks,
    random_start_offsets,
    run_asynchronous,
    run_experiment_grid_batched,
    run_experiment_trial,
    run_experiment_trials_batched,
    run_synchronous,
    run_trials,
)
from .slotted import SlottedSimulator
from .stopping import StoppingCondition
from .termination_runner import (
    TerminationOutcome,
    run_terminating_async,
    run_terminating_sync,
)
from .trace import ExecutionTrace, FrameRecord, SlotRecord

__all__ = [
    "AsyncSimulator",
    "BatchOutcome",
    "BatchedSlottedSimulator",
    "ExperimentSpec",
    "TerminationOutcome",
    "load_result",
    "result_from_dict",
    "run_batch",
    "run_terminating_async",
    "run_terminating_sync",
    "Clock",
    "ConstantDriftClock",
    "DiscoveryResult",
    "DiscreteEventEngine",
    "Event",
    "EventQueue",
    "ExecutionTrace",
    "FastSlottedSimulator",
    "FlatSchedule",
    "FrameRecord",
    "GridBatchedSimulator",
    "GridCell",
    "GrowingEstimateSchedule",
    "Medium",
    "ParallelPlan",
    "PerfectClock",
    "PiecewiseDriftClock",
    "RandomWalkDriftClock",
    "RngFactory",
    "SinusoidalDriftClock",
    "SlotProfiler",
    "SlotRecord",
    "SlottedSimulator",
    "SparseReception",
    "StagedSchedule",
    "StoppingCondition",
    "Transmission",
    "VectorSchedule",
    "check_drift_bound",
    "derive_trial_seed",
    "make_clocks",
    "make_generator",
    "random_start_offsets",
    "resolve_plan",
    "run_asynchronous",
    "run_experiment_grid_batched",
    "run_experiment_trial",
    "run_experiment_trials_batched",
    "run_grid_spec_trials",
    "run_spec_trials",
    "run_synchronous",
    "run_trials",
    "spawn_generators",
]
