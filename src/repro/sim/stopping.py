"""Stopping conditions for discovery runs.

The paper's protocols run forever (``while true``); termination is an
experiment-level concern. Engines accept a :class:`StoppingCondition`
that combines a hard budget with an oracle "stop when every link is
covered" rule (the oracle sees global state that nodes themselves
cannot — lightweight distributed termination detection is the subject
of the authors' companion work [22] and out of scope here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import ConfigurationError

__all__ = ["StoppingCondition"]


@dataclass(frozen=True)
class StoppingCondition:
    """When a discovery run ends.

    Attributes:
        max_slots: Slot budget for synchronous engines (global slots).
        max_real_time: Real-time budget for the asynchronous engine.
        max_frames_per_node: Frame budget for the asynchronous engine —
            stop once *every* node has executed this many full frames
            since its start (this is how Theorem 9's ``T_f`` is defined).
        stop_on_full_coverage: End the run as soon as every directed
            link has been covered (oracle termination).
    """

    max_slots: Optional[int] = None
    max_real_time: Optional[float] = None
    max_frames_per_node: Optional[int] = None
    stop_on_full_coverage: bool = True

    def __post_init__(self) -> None:
        if self.max_slots is not None and self.max_slots <= 0:
            raise ConfigurationError(f"max_slots must be positive, got {self.max_slots}")
        if self.max_real_time is not None and self.max_real_time <= 0:
            raise ConfigurationError(
                f"max_real_time must be positive, got {self.max_real_time}"
            )
        if self.max_frames_per_node is not None and self.max_frames_per_node <= 0:
            raise ConfigurationError(
                f"max_frames_per_node must be positive, got {self.max_frames_per_node}"
            )

    def require_slot_budget(self) -> int:
        """The slot budget, which synchronous engines must have."""
        if self.max_slots is None:
            raise ConfigurationError(
                "synchronous runs require max_slots (protocols never "
                "terminate on their own)"
            )
        return self.max_slots

    def require_async_budget(self) -> None:
        """Asynchronous runs need at least one budget dimension."""
        if self.max_real_time is None and self.max_frames_per_node is None:
            raise ConfigurationError(
                "asynchronous runs require max_real_time and/or "
                "max_frames_per_node"
            )

    @classmethod
    def slots(cls, budget: int, stop_on_full_coverage: bool = True) -> "StoppingCondition":
        """Shorthand for a synchronous slot budget."""
        return cls(max_slots=budget, stop_on_full_coverage=stop_on_full_coverage)

    @classmethod
    def frames(
        cls, budget: int, stop_on_full_coverage: bool = True
    ) -> "StoppingCondition":
        """Shorthand for an asynchronous per-node frame budget."""
        return cls(
            max_frames_per_node=budget, stop_on_full_coverage=stop_on_full_coverage
        )
