"""Continuous-time wireless medium for the asynchronous engine.

Tracks, per channel, the set of in-flight transmissions and which other
transmissions each one overlapped in time. The engine uses that record
at a transmission's end to decide, per listener, whether the copy was
*clear*: interference at receiver ``u`` comes only from transmissions by
nodes ``u`` can hear (paper §II — a node out of range contributes
nothing at ``u``; there is no physical-SINR model, matching the paper's
protocol model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from ..core.messages import HelloMessage
from ..exceptions import SimulationError

__all__ = ["Transmission", "Medium"]


@dataclass(eq=False)
class Transmission:
    """One slot-length transmission on one channel.

    Attributes:
        sender: Transmitting node.
        channel: Channel transmitted on.
        start: Real start time.
        end: Real end time (scheduled; transmissions are never aborted).
        message: The hello carried.
        overlapped: Other same-channel transmissions whose active
            interval intersected this one's (maintained by the medium;
            may include boundary-touching entries — use
            :meth:`overlaps_interval` to filter strictly).
    """

    sender: int
    channel: int
    start: float
    end: float
    message: HelloMessage
    overlapped: List["Transmission"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(
                f"transmission by {self.sender} has non-positive duration "
                f"[{self.start}, {self.end}]"
            )

    def overlaps_interval(self, start: float, end: float) -> bool:
        """Strict time overlap with ``(start, end)`` (boundaries touch OK)."""
        return self.start < end and start < self.end

    def interferers(self, audible: Iterable[int]) -> List[int]:
        """Senders audible to a receiver whose transmissions truly
        overlapped this one (excluding this transmission's own sender)."""
        audible_set = set(audible)
        return [
            other.sender
            for other in self.overlapped
            if other.sender != self.sender
            and other.sender in audible_set
            and other.overlaps_interval(self.start, self.end)
        ]


class Medium:
    """Per-channel bookkeeping of in-flight transmissions."""

    def __init__(self) -> None:
        self._active: Dict[int, Set[Transmission]] = {}

    def begin(self, tx: Transmission) -> None:
        """Register a transmission start; links mutual overlaps."""
        peers = self._active.setdefault(tx.channel, set())
        for other in peers:
            other.overlapped.append(tx)
            tx.overlapped.append(other)
        peers.add(tx)

    def end(self, tx: Transmission) -> None:
        """Unregister a finished transmission.

        Raises:
            SimulationError: If the transmission was never begun (an
                engine scheduling bug).
        """
        peers = self._active.get(tx.channel)
        if peers is None or tx not in peers:
            raise SimulationError(
                f"ending unknown transmission by {tx.sender} on channel "
                f"{tx.channel}"
            )
        peers.remove(tx)

    def active_on(self, channel: int) -> List[Transmission]:
        """Currently in-flight transmissions on ``channel``."""
        return list(self._active.get(channel, ()))

    @property
    def total_active(self) -> int:
        """Total in-flight transmissions across channels."""
        return sum(len(s) for s in self._active.values())
