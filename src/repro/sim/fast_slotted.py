"""Vectorized synchronous engine (numpy twin of :mod:`repro.sim.slotted`).

All three synchronous algorithms of the paper share one per-slot
template: *select a channel uniformly at random from* ``A(u)`` *and
transmit with probability* ``p(u, local_slot)``, *listening otherwise*.
This engine exploits that: decisions for all nodes are drawn with a few
numpy operations per slot and receptions are resolved with per-channel
adjacency structures, giving orders of magnitude more slots per second
than the reference engine. A test pins the two engines' statistical
agreement.

Two interchangeable reception kernels resolve who hears whom (byte-
identical results, pinned by tests):

* **dense** — a stacked ``(C, N, N)`` float32 audibility tensor and one
  batched matmul per slot; fastest for small networks, but costs
  O(C·N²) memory and per-slot work regardless of how few nodes
  transmit;
* **sparse** (:class:`SparseReception`) — CSR-style per-channel
  adjacency plus one ``np.bincount`` scatter-add over the slot's
  *actual* transmitters, so per-slot cost scales with
  transmitters-and-edges and memory with O(E). The default above
  :data:`DENSE_RECEPTION_CEILING` dense entries, and the kernel
  :class:`~repro.sim.batched.BatchedSlottedSimulator` batches whole
  trial campaigns through.

The probability schedules live in :class:`VectorSchedule` subclasses —
one per algorithm — which compute ``p`` for all nodes at once (and
broadcast over a leading batch axis, see :mod:`repro.sim.batched`).

Limitations (use the reference engine instead): protocols that pick
channels non-uniformly (universal sweep, deterministic scan) and
per-node hello bookkeeping (neighbor tables are reconstructed from link
coverage, which is equivalent because a clear hello from ``v`` always
carries ``A(v)``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.params import stage_length, validate_delta_est
from ..exceptions import ConfigurationError, SimulationError
from ..net.network import M2HeWNetwork
from .profile import SlotProfiler
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan

__all__ = [
    "DENSE_RECEPTION_CEILING",
    "RECEPTION_KERNELS",
    "SparseReception",
    "VectorSchedule",
    "StagedSchedule",
    "RepeatedStagedSchedule",
    "GrowingEstimateSchedule",
    "FlatSchedule",
    "FastSlottedSimulator",
]

#: Accepted ``reception=`` values for :class:`FastSlottedSimulator`.
RECEPTION_KERNELS = ("auto", "dense", "sparse")

#: ``reception="auto"`` switches from the dense ``(C, N, N)`` tensor to
#: the sparse kernel once the tensor would exceed this many entries
#: (4 MiB of float32 — beyond that the matmul touches more zeros than
#: the sparse kernel touches edges on any realistic workload).
DENSE_RECEPTION_CEILING = 1 << 20


class SparseReception:
    """CSR per-channel audibility + scatter aggregation over transmitters.

    The structure answers, for one slot, the same two questions the
    dense matmul answers — per listening slot ``(trial, channel, node)``
    the number of audible transmitters, and their identity where unique
    — but via one ``np.bincount`` scatter-add plus a last-write-wins
    sender scatter in O(E_t + B·C·N), where ``E_t`` is the number of
    audibility edges leaving the slot's *actual* transmitters, instead
    of O(C·N²).

    Layout: edges are grouped by ``(dense channel k, transmitter v)``;
    ``starts[k·N + v] : starts[k·N + v + 1]`` indexes the listeners that
    hear ``v`` on channel ``k`` in ``flat``. All arithmetic is int64 and
    exact (the dense float32 path is exact too — small-integer sums —
    which is why the two kernels are byte-identical).

    The ``resolve`` key space has room for a leading batch axis: caller
    ``b`` offsets both transmitter and listener keys by
    ``b · (num_dense · N)``, which is how
    :class:`~repro.sim.batched.BatchedSlottedSimulator` resolves every
    trial of a batch in one call.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        node_index: Mapping[int, int],
        universal: List[int],
    ) -> None:
        n = len(node_index)
        num_dense = len(universal)
        listeners_of: List[List[int]] = [[] for _ in range(num_dense * n)]
        for k, c in enumerate(universal):
            for u, i in node_index.items():
                for v in network.neighbors_on(u, c):
                    listeners_of[k * n + node_index[v]].append(i)
        counts = np.array([len(ls) for ls in listeners_of], dtype=np.int64)
        self.starts = np.zeros(num_dense * n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.starts[1:])
        self.flat = np.empty(int(self.starts[-1]), dtype=np.int64)
        for j, ls in enumerate(listeners_of):
            self.flat[self.starts[j] : self.starts[j + 1]] = sorted(ls)
        self.num_nodes = n
        self.num_dense = num_dense
        # Persistent sender scratch (grown on demand, reused across
        # slots). Allocating it per call looks cheap in isolation but
        # at batched sizes (B·C·N ≈ 10⁵ keys, ~768 KiB) a second live
        # key-space array pushes the allocator to fresh mmaps, and
        # every slot then pays lazy page faults on first touch —
        # roughly 350 µs/slot, dwarfing the actual counting work. With
        # this buffer persistent, ``np.bincount``'s own key-space
        # output recycles one warm heap block per call.
        self._sender_scratch: Optional[np.ndarray] = None

    def resolve(
        self,
        csr_idx: np.ndarray,
        bases: np.ndarray,
        senders: np.ndarray,
        query_keys: np.ndarray,
        space: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Counts and identity-weighted sums at each listening slot.

        Args:
            csr_idx: Per transmitter, ``k·N + v`` (its channel row).
            bases: Per transmitter, the batch offset ``b·(C·N)`` (all
                zeros for a single trial).
            senders: Per transmitter, its node index ``v``.
            query_keys: Per listener, ``b·(C·N) + k·N + u`` for the
                channel ``k`` it listens on.
            space: Size of the key space, ``B·C·N`` — the
                ``np.bincount`` accumulator length.

        Returns:
            ``(counts, senders_at)`` int64 arrays aligned with
            ``query_keys``: the number of audible transmitters on that
            (trial, channel) as heard by ``u``, and the node index of
            one of them — **meaningful only where the count is exactly
            one** (at collided keys it is an arbitrary transmitter, at
            silent keys uninitialized scratch; callers must mask).
        """
        edge_counts = self.starts[csr_idx + 1] - self.starts[csr_idx]
        seg_ends = np.cumsum(edge_counts)
        total = int(seg_ends[-1]) if seg_ends.size else 0
        if total == 0:
            zeros = np.zeros(query_keys.shape[0], dtype=np.int64)
            return zeros, zeros.copy()
        # Expand each transmitter's CSR segment into flat edge pointers.
        shifts = np.repeat(
            self.starts[csr_idx] - seg_ends + edge_counts, edge_counts
        )
        shifts += np.arange(total, dtype=np.int64)
        listeners = self.flat[shifts]
        # Edge key = batch offset + channel row + listener; the channel
        # row of transmitter j is csr_idx[j] − senders[j] (= k·N). The
        # count scatter-add over the (small) dense key space is one
        # ``np.bincount`` — O(E_t + B·C·N), no sort, exact int64. The
        # sender identity needs no summation at all: a last-write-wins
        # scatter into the persistent buffer leaves the *unique*
        # transmitter wherever the count is one, which is the only
        # place callers may look (the buffer stays stale at silent
        # keys: scratch by contract, never cleared).
        edge_keys = np.repeat(bases + csr_idx - senders, edge_counts)
        edge_keys += listeners
        if self._sender_scratch is None or self._sender_scratch.shape[0] < space:
            self._sender_scratch = np.empty(space, dtype=np.int64)
        sender_at = self._sender_scratch
        counts = np.bincount(edge_keys, minlength=space)
        sender_at[edge_keys] = np.repeat(senders, edge_counts)
        return counts[query_keys], sender_at[query_keys]


class VectorSchedule(abc.ABC):
    """Per-node transmit probabilities, vectorized over nodes.

    ``sizes`` is the vector of ``|A(u)|`` in node-index order.
    """

    def __init__(self, sizes: np.ndarray) -> None:
        sizes = np.asarray(sizes, dtype=np.float64)
        if sizes.ndim != 1 or np.any(sizes < 1):
            raise ConfigurationError("sizes must be a 1-D vector of |A(u)| >= 1")
        self._sizes = sizes

    @property
    def num_nodes(self) -> int:
        return int(self._sizes.shape[0])

    @abc.abstractmethod
    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        """``p(u, local_slots[u])`` for every node ``u`` at once.

        ``local_slots`` is ``(N,)`` for a single trial or ``(B, N)`` for
        a trial batch (:class:`~repro.sim.batched.
        BatchedSlottedSimulator`); the result broadcasts against the
        input shape. Entries for negative ``local_slots`` (not yet
        started nodes) may be arbitrary — the engine masks them out.
        """


class StagedSchedule(VectorSchedule):
    """Algorithm 1: ``p = min(1/2, |A(u)| / 2^i)``, ``i`` sweeping the stage."""

    def __init__(self, sizes: np.ndarray, delta_est: int) -> None:
        super().__init__(sizes)
        self._stage_len = stage_length(validate_delta_est(delta_est))

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        i = np.mod(np.maximum(local_slots, 0), self._stage_len) + 1
        return np.minimum(0.5, self._sizes / np.exp2(i))


class RepeatedStagedSchedule(VectorSchedule):
    """Robust staged sweep: each probability level held ``repeat`` slots.

    The vectorized twin of
    :class:`~repro.core.robust.RobustStagedDiscovery` — identical to
    :class:`StagedSchedule` except that level ``i`` of the geometric
    sweep occupies ``repeat`` consecutive slots, compensating assumed
    channel loss with immediate retries at the same level.
    """

    def __init__(self, sizes: np.ndarray, delta_est: int, repeat: int) -> None:
        super().__init__(sizes)
        if repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
        self._stage_len = stage_length(validate_delta_est(delta_est))
        self._repeat = int(repeat)

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        level = np.maximum(local_slots, 0) // self._repeat
        i = np.mod(level, self._stage_len) + 1
        return np.minimum(0.5, self._sizes / np.exp2(i))


class GrowingEstimateSchedule(VectorSchedule):
    """Algorithm 2: stages for estimates ``d = 2, 3, 4, …`` back to back.

    The (estimate, slot-in-stage) sequence is identical for all nodes, so
    it is computed once per slot and broadcast.
    """

    def __init__(self, sizes: np.ndarray) -> None:
        super().__init__(sizes)
        self._boundaries = [0]
        self._bounds_arr = np.asarray(self._boundaries)

    def _extend(self, local_slot: int) -> None:
        # The array form is rebuilt only when a new stage boundary is
        # actually appended — probabilities() runs once per slot, so a
        # per-call np.asarray over the whole list would dominate.
        if self._boundaries[-1] > local_slot:
            return
        while self._boundaries[-1] <= local_slot:
            d = 2 + len(self._boundaries) - 1
            self._boundaries.append(self._boundaries[-1] + stage_length(d))
        self._bounds_arr = np.asarray(self._boundaries)

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        clipped = np.maximum(local_slots, 0)
        self._extend(int(clipped.max(initial=0)))
        bounds = self._bounds_arr
        stage_idx = np.searchsorted(bounds, clipped, side="right") - 1
        i = clipped - bounds[stage_idx] + 1
        return np.minimum(0.5, self._sizes / np.exp2(i))


class FlatSchedule(VectorSchedule):
    """Algorithm 3: constant ``p = min(1/2, |A(u)| / Δ_est)``."""

    def __init__(self, sizes: np.ndarray, delta_est: int) -> None:
        super().__init__(sizes)
        self._p = np.minimum(0.5, self._sizes / float(validate_delta_est(delta_est)))
        # Handed out by reference every slot; a writable return would
        # let one caller silently corrupt every later slot's schedule.
        self._p.setflags(write=False)

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        return self._p


class FastSlottedSimulator:
    """Numpy-vectorized synchronous discovery simulator.

    Semantics are identical to :class:`~repro.sim.slotted.SlottedSimulator`
    (same collision rules, start offsets and erasure model); only the
    protocol representation differs — a :class:`VectorSchedule` instead
    of per-node protocol objects.

    ``reception`` selects the kernel that resolves who hears whom:
    ``"dense"`` (batched matmul over a ``(C, N, N)`` tensor),
    ``"sparse"`` (:class:`SparseReception`), or ``"auto"`` (dense until
    the tensor would exceed :data:`DENSE_RECEPTION_CEILING` entries).
    The choice never changes a single output byte — both kernels
    compute exact integer counts — it only trades memory for per-slot
    constant factors.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        schedule: VectorSchedule,
        rng_factory: RngFactory,
        start_offsets: Optional[Mapping[int, int]] = None,
        erasure_prob: float = 0.0,
        faults: Optional["FaultPlan"] = None,
        reception: str = "auto",
        *,
        profile: bool = False,
    ) -> None:
        self._profiler: Optional[SlotProfiler] = (
            SlotProfiler() if profile else None
        )
        if not 0.0 <= erasure_prob < 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1), got {erasure_prob}"
            )
        if reception not in RECEPTION_KERNELS:
            raise ConfigurationError(
                f"unknown reception kernel {reception!r}; choose from "
                f"{RECEPTION_KERNELS}"
            )
        self._faults = None
        if faults is not None:
            from ..faults.runtime import compile_plan

            self._faults = compile_plan(
                faults, network, rng_factory, time_unit="slots"
            )
        self._network = network
        self._ids = network.node_ids
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        n = len(self._ids)
        if schedule.num_nodes != n:
            raise ConfigurationError(
                f"schedule covers {schedule.num_nodes} nodes, network has {n}"
            )
        self._schedule = schedule
        self._rng = rng_factory.stream("fast-engine")
        self._erasure_prob = erasure_prob

        offsets = dict(start_offsets or {})
        self._offsets = np.zeros(n, dtype=np.int64)
        for nid, off in offsets.items():
            if off < 0:
                raise ConfigurationError(
                    f"start offset of node {nid} must be >= 0, got {off}"
                )
            self._offsets[self._index[nid]] = int(off)
        if self._faults is not None:
            for i, nid in enumerate(self._ids):
                join = self._faults.join_offset(nid)
                if join > self._offsets[i]:
                    self._offsets[i] = join

        # Dense channel indexing: flat channel list + per-node extents for
        # uniform selection, plus per-channel "u hears v and both have c"
        # matrices for reception resolution.
        universal = sorted(network.universal_channel_set)
        self._channel_of_dense = np.asarray(universal, dtype=np.int64)
        dense_of_channel = {c: k for k, c in enumerate(universal)}

        self._sizes = np.array(
            [len(network.channels_of(nid)) for nid in self._ids], dtype=np.int64
        )
        self._chan_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._chan_starts[1:])
        self._chan_flat = np.empty(int(self._chan_starts[-1]), dtype=np.int64)
        for i, nid in enumerate(self._ids):
            chans = sorted(network.channels_of(nid))
            self._chan_flat[self._chan_starts[i] : self._chan_starts[i + 1]] = [
                dense_of_channel[c] for c in chans
            ]

        # Reception kernel. Dense: stacked per-channel audibility tensor
        # (C, N, N) in float32 — reception for a whole slot is one
        # batched contraction giving, per (listener, channel), the count
        # of audible transmitters and the identity-weighted sum that
        # directly yields the sender id where the count is exactly one.
        # Sparse: CSR adjacency + scatter over actual transmitters, same
        # two quantities in O(edges-of-transmitters) (see
        # SparseReception). Identical outputs either way.
        num_dense = len(universal)
        if reception == "auto":
            reception = (
                "dense"
                if num_dense * n * n <= DENSE_RECEPTION_CEILING
                else "sparse"
            )
        self._reception = reception
        self._adj3: Optional[np.ndarray] = None
        self._sparse: Optional[SparseReception] = None
        if reception == "dense":
            self._adj3 = np.zeros((num_dense, n, n), dtype=np.float32)
            for k, c in enumerate(universal):
                for i, u in enumerate(self._ids):
                    for v in network.neighbors_on(u, c):
                        self._adj3[k, i, self._index[v]] = 1.0
            # Per-slot one-hot scratch: written and wiped per slot, only
            # on the rows actually touched (re-zeroing all C·N·2 entries
            # every slot dominated small-slot profiles).
            self._e_buf = np.zeros((num_dense, n, 2), dtype=np.float32)
        else:
            self._sparse = SparseReception(network, self._index, universal)
        self._num_dense = num_dense
        self._node_idx = np.arange(n, dtype=np.float32)
        self._row_idx = np.arange(n)
        self._zero_bases = np.zeros(n, dtype=np.int64)
        if self._faults is not None:
            self._faults.bind_dense(self._ids, dense_of_channel, num_dense)

        # Radio-activity counters (slots per mode), for energy accounting.
        self._tx_slots = np.zeros(n, dtype=np.int64)
        self._rx_slots = np.zeros(n, dtype=np.int64)
        # Contention counters per receiver (collision = >= 2 audible
        # simultaneous transmissions; clear = exactly 1, before erasure).
        self._collisions = np.zeros(n, dtype=np.int64)
        self._clear = np.zeros(n, dtype=np.int64)

        # Coverage times indexed [tx, rx]; -1 = not yet covered. Link
        # columns (keys, endpoints, spans, coverage gather indices) are
        # hoisted once so result building never walks DirectedLink
        # properties in a per-link Python loop — at large N that loop
        # cost more than the entire slot kernel.
        self._is_link = np.zeros((n, n), dtype=bool)
        links = network.links()
        self._links = links
        self._link_keys: List[Tuple[int, int]] = [link.key for link in links]
        self._link_tx: List[int] = [link.transmitter for link in links]
        self._link_rx: List[int] = [link.receiver for link in links]
        self._link_spans = [link.span for link in links]
        self._link_tx_idx = np.array(
            [self._index[link.transmitter] for link in links], dtype=np.int64
        )
        self._link_rx_idx = np.array(
            [self._index[link.receiver] for link in links], dtype=np.int64
        )
        self._is_link[self._link_tx_idx, self._link_rx_idx] = True

    def run(self, stopping: StoppingCondition) -> DiscoveryResult:
        """Execute slots until the stopping condition fires."""
        budget = stopping.require_slot_budget()
        n = len(self._ids)
        cov = np.full((n, n), -1.0)
        uncovered = int(self._is_link.sum())
        slots_executed = 0

        for t in range(budget):
            if stopping.stop_on_full_coverage and uncovered == 0:
                break
            uncovered -= self._run_slot(t, cov)
            slots_executed = t + 1

        return self._build_result(cov, slots_executed)

    def _run_slot(self, t: int, cov: np.ndarray) -> int:
        n = len(self._ids)
        prof = self._profiler
        p0 = prof.start() if prof is not None else 0.0
        active = self._offsets <= t
        faults = self._faults
        if faults is not None:
            faults.begin_slot(t)
            if faults.has_churn:
                active = active & faults.alive_mask(t)
        if not active.any():
            return 0
        local = t - self._offsets
        p = self._schedule.probabilities(local)
        if prof is not None:
            p0 = prof.lap("schedule", p0)

        transmit = (self._rng.random(n) < p) & active
        listen = active & ~transmit
        self._tx_slots += transmit
        self._rx_slots += listen
        if not transmit.any() or not listen.any():
            return 0

        pick = self._rng.integers(0, self._sizes)
        if prof is not None:
            p0 = prof.lap("rng", p0)
        chan = self._chan_flat[self._chan_starts[:-1] + pick]
        if faults is not None and faults.has_spectrum:
            # Suppress blocked transmitters (they sense the blocker and
            # defer) and blocked listeners (they hear only its signal);
            # the slots still count as spent radio activity above.
            suppressed = faults.blocked_mask()[self._row_idx, chan]
            if suppressed.any():
                transmit = transmit & ~suppressed
                listen = listen & ~suppressed
                if not transmit.any() or not listen.any():
                    return 0

        if prof is not None:
            p0 = prof.lap("channel", p0)
        n = len(self._ids)
        tx_idx = np.flatnonzero(transmit)
        if self._adj3 is not None:
            # Dense kernel. Per-transmitter one-hot over channels, plus
            # the identity-weighted copy: E[v, c, 0] = [v transmits on
            # c], E[v, c, 1] = v's index if so. The scratch tensor is
            # preallocated; only the rows touched this slot are wiped.
            chan_tx = chan[tx_idx]
            e = self._e_buf
            e[chan_tx, tx_idx, 0] = 1.0
            e[chan_tx, tx_idx, 1] = self._node_idx[tx_idx]
            # Batched matmul (BLAS): r[c, u, 0] = audible transmitters
            # on c as heard by u; r[c, u, 1] = sum of their indices.
            r = np.matmul(self._adj3, e)
            e[chan_tx, tx_idx, :] = 0.0
            counts = r[chan, self._row_idx, 0]
            weighted = r[chan, self._row_idx, 1]

            self._collisions += listen & (counts >= 1.5)
            clear_mask = listen & (np.abs(counts - 1.0) < 0.25)
            self._clear += clear_mask
            if not clear_mask.any():
                return 0
            receivers = np.flatnonzero(clear_mask)
            senders = np.rint(weighted[receivers]).astype(np.int64)
        else:
            # Sparse kernel: scatter over this slot's transmitters only.
            assert self._sparse is not None
            listeners = np.flatnonzero(listen)
            counts_l, senders_l = self._sparse.resolve(
                chan[tx_idx] * n + tx_idx,
                self._zero_bases[: tx_idx.size],
                tx_idx,
                chan[listeners] * n + listeners,
                self._num_dense * n,
            )
            collided = counts_l >= 2
            self._collisions[listeners[collided]] += 1
            clear_l = counts_l == 1
            self._clear[listeners[clear_l]] += 1
            if not clear_l.any():
                return 0
            receivers = listeners[clear_l]
            senders = senders_l[clear_l]
        if prof is not None:
            p0 = prof.lap("reception", p0)
        if self._erasure_prob > 0.0:
            keep = self._rng.random(receivers.size) >= self._erasure_prob
            receivers, senders = receivers[keep], senders[keep]
            if receivers.size == 0:
                return 0
        if faults is not None and faults.has_loss:
            keep = faults.keep_mask(senders, receivers, float(t), self._rng)
            receivers, senders = receivers[keep], senders[keep]
            if receivers.size == 0:
                return 0
        fresh = cov[senders, receivers] < 0
        if not fresh.any():
            if prof is not None:
                prof.lap("delivery", p0)
            return 0
        cov[senders[fresh], receivers[fresh]] = float(t)
        covered = int(fresh.sum())
        if prof is not None:
            prof.lap("delivery", p0)
        return covered

    def profile(self) -> Optional[Dict[str, Dict[str, float]]]:
        """Per-phase timing snapshot, or ``None`` when not profiling."""
        if self._profiler is None:
            return None
        return self._profiler.snapshot()

    def _build_result(self, cov: np.ndarray, slots_executed: int) -> DiscoveryResult:
        prof = self._profiler
        p0 = prof.start() if prof is not None else 0.0
        # Gather the per-link coverage row once, then build every dict
        # via zip over .tolist() — identical contents and insertion
        # order to the historical per-link property loop.
        cov_row = cov[self._link_tx_idx, self._link_rx_idx]
        times = cov_row.tolist()
        coverage: Dict[Tuple[int, int], Optional[float]] = dict(
            zip(
                self._link_keys,
                [None if cov_t < 0 else cov_t for cov_t in times],
            )
        )
        tables: Dict[int, Dict[int, frozenset]] = {nid: {} for nid in self._ids}
        link_rx = self._link_rx
        link_tx = self._link_tx
        link_spans = self._link_spans
        for e_i in np.flatnonzero(cov_row >= 0).tolist():
            tables[link_rx[e_i]][link_tx[e_i]] = link_spans[e_i]
        completed = bool((cov_row >= 0).all())
        metadata: Dict[str, object] = {
            "engine": "slotted-fast",
            "erasure_prob": self._erasure_prob,
            "radio_activity": {
                nid: {"tx": tx, "rx": rx, "quiet": 0}
                for nid, tx, rx in zip(
                    self._ids,
                    self._tx_slots.tolist(),
                    self._rx_slots.tolist(),
                )
            },
            "collisions": dict(zip(self._ids, self._collisions.tolist())),
            "clear_receptions": dict(zip(self._ids, self._clear.tolist())),
        }
        if self._faults is not None:
            metadata["faults"] = self._faults.describe()
        result = DiscoveryResult(
            time_unit="slots",
            coverage=coverage,
            horizon=float(slots_executed),
            completed=completed,
            neighbor_tables=tables,
            start_times=dict(
                zip(self._ids, self._offsets.astype(np.float64).tolist())
            ),
            network_params=self._network.parameter_summary(),
            metadata=metadata,
        )
        if prof is not None:
            prof.lap("result", p0)
        return result
