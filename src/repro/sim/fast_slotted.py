"""Vectorized synchronous engine (numpy twin of :mod:`repro.sim.slotted`).

All three synchronous algorithms of the paper share one per-slot
template: *select a channel uniformly at random from* ``A(u)`` *and
transmit with probability* ``p(u, local_slot)``, *listening otherwise*.
This engine exploits that: decisions for all nodes are drawn with a few
numpy operations per slot and receptions are resolved with per-channel
adjacency matrices, giving orders of magnitude more slots per second
than the reference engine. A test pins the two engines' statistical
agreement.

The probability schedules live in :class:`VectorSchedule` subclasses —
one per algorithm — which compute ``p`` for all nodes at once.

Limitations (use the reference engine instead): protocols that pick
channels non-uniformly (universal sweep, deterministic scan) and
per-node hello bookkeeping (neighbor tables are reconstructed from link
coverage, which is equivalent because a clear hello from ``v`` always
carries ``A(v)``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.params import stage_length, validate_delta_est
from ..exceptions import ConfigurationError, SimulationError
from ..net.network import M2HeWNetwork
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan

__all__ = [
    "VectorSchedule",
    "StagedSchedule",
    "GrowingEstimateSchedule",
    "FlatSchedule",
    "FastSlottedSimulator",
]


class VectorSchedule(abc.ABC):
    """Per-node transmit probabilities, vectorized over nodes.

    ``sizes`` is the vector of ``|A(u)|`` in node-index order.
    """

    def __init__(self, sizes: np.ndarray) -> None:
        sizes = np.asarray(sizes, dtype=np.float64)
        if sizes.ndim != 1 or np.any(sizes < 1):
            raise ConfigurationError("sizes must be a 1-D vector of |A(u)| >= 1")
        self._sizes = sizes

    @property
    def num_nodes(self) -> int:
        return int(self._sizes.shape[0])

    @abc.abstractmethod
    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        """``p(u, local_slots[u])`` for every node ``u`` at once.

        Entries for negative ``local_slots`` (not yet started nodes) may
        be arbitrary — the engine masks them out.
        """


class StagedSchedule(VectorSchedule):
    """Algorithm 1: ``p = min(1/2, |A(u)| / 2^i)``, ``i`` sweeping the stage."""

    def __init__(self, sizes: np.ndarray, delta_est: int) -> None:
        super().__init__(sizes)
        self._stage_len = stage_length(validate_delta_est(delta_est))

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        i = np.mod(np.maximum(local_slots, 0), self._stage_len) + 1
        return np.minimum(0.5, self._sizes / np.exp2(i))


class GrowingEstimateSchedule(VectorSchedule):
    """Algorithm 2: stages for estimates ``d = 2, 3, 4, …`` back to back.

    The (estimate, slot-in-stage) sequence is identical for all nodes, so
    it is computed once per slot and broadcast.
    """

    def __init__(self, sizes: np.ndarray) -> None:
        super().__init__(sizes)
        self._boundaries = [0]

    def _extend(self, local_slot: int) -> None:
        while self._boundaries[-1] <= local_slot:
            d = 2 + len(self._boundaries) - 1
            self._boundaries.append(self._boundaries[-1] + stage_length(d))

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        clipped = np.maximum(local_slots, 0)
        self._extend(int(clipped.max(initial=0)))
        bounds = np.asarray(self._boundaries)
        stage_idx = np.searchsorted(bounds, clipped, side="right") - 1
        i = clipped - bounds[stage_idx] + 1
        return np.minimum(0.5, self._sizes / np.exp2(i))


class FlatSchedule(VectorSchedule):
    """Algorithm 3: constant ``p = min(1/2, |A(u)| / Δ_est)``."""

    def __init__(self, sizes: np.ndarray, delta_est: int) -> None:
        super().__init__(sizes)
        self._p = np.minimum(0.5, self._sizes / float(validate_delta_est(delta_est)))

    def probabilities(self, local_slots: np.ndarray) -> np.ndarray:
        return self._p


class FastSlottedSimulator:
    """Numpy-vectorized synchronous discovery simulator.

    Semantics are identical to :class:`~repro.sim.slotted.SlottedSimulator`
    (same collision rules, start offsets and erasure model); only the
    protocol representation differs — a :class:`VectorSchedule` instead
    of per-node protocol objects.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        schedule: VectorSchedule,
        rng_factory: RngFactory,
        start_offsets: Optional[Mapping[int, int]] = None,
        erasure_prob: float = 0.0,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if not 0.0 <= erasure_prob < 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1), got {erasure_prob}"
            )
        self._faults = None
        if faults is not None:
            from ..faults.runtime import compile_plan

            self._faults = compile_plan(
                faults, network, rng_factory, time_unit="slots"
            )
        self._network = network
        self._ids = network.node_ids
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        n = len(self._ids)
        if schedule.num_nodes != n:
            raise ConfigurationError(
                f"schedule covers {schedule.num_nodes} nodes, network has {n}"
            )
        self._schedule = schedule
        self._rng = rng_factory.stream("fast-engine")
        self._erasure_prob = erasure_prob

        offsets = dict(start_offsets or {})
        self._offsets = np.zeros(n, dtype=np.int64)
        for nid, off in offsets.items():
            if off < 0:
                raise ConfigurationError(
                    f"start offset of node {nid} must be >= 0, got {off}"
                )
            self._offsets[self._index[nid]] = int(off)
        if self._faults is not None:
            for i, nid in enumerate(self._ids):
                join = self._faults.join_offset(nid)
                if join > self._offsets[i]:
                    self._offsets[i] = join

        # Dense channel indexing: flat channel list + per-node extents for
        # uniform selection, plus per-channel "u hears v and both have c"
        # matrices for reception resolution.
        universal = sorted(network.universal_channel_set)
        self._channel_of_dense = np.asarray(universal, dtype=np.int64)
        dense_of_channel = {c: k for k, c in enumerate(universal)}

        self._sizes = np.array(
            [len(network.channels_of(nid)) for nid in self._ids], dtype=np.int64
        )
        self._chan_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._chan_starts[1:])
        self._chan_flat = np.empty(int(self._chan_starts[-1]), dtype=np.int64)
        for i, nid in enumerate(self._ids):
            chans = sorted(network.channels_of(nid))
            self._chan_flat[self._chan_starts[i] : self._chan_starts[i + 1]] = [
                dense_of_channel[c] for c in chans
            ]

        # Stacked per-channel audibility tensor (C, N, N) in float32:
        # reception for a whole slot is resolved with one batched
        # contraction — per (listener, channel) the count of audible
        # transmitters and the identity-weighted sum that directly
        # yields the sender id where the count is exactly one.
        num_dense = len(universal)
        self._adj3 = np.zeros((num_dense, n, n), dtype=np.float32)
        for k, c in enumerate(universal):
            for i, u in enumerate(self._ids):
                for v in network.neighbors_on(u, c):
                    self._adj3[k, i, self._index[v]] = 1.0
        self._num_dense = num_dense
        self._node_idx = np.arange(n, dtype=np.float32)
        self._row_idx = np.arange(n)
        if self._faults is not None:
            self._faults.bind_dense(self._ids, dense_of_channel, num_dense)

        # Radio-activity counters (slots per mode), for energy accounting.
        self._tx_slots = np.zeros(n, dtype=np.int64)
        self._rx_slots = np.zeros(n, dtype=np.int64)
        # Contention counters per receiver (collision = >= 2 audible
        # simultaneous transmissions; clear = exactly 1, before erasure).
        self._collisions = np.zeros(n, dtype=np.int64)
        self._clear = np.zeros(n, dtype=np.int64)

        # Coverage times indexed [tx, rx]; -1 = not yet covered.
        self._is_link = np.zeros((n, n), dtype=bool)
        for link in network.links():
            self._is_link[self._index[link.transmitter], self._index[link.receiver]] = True

    def run(self, stopping: StoppingCondition) -> DiscoveryResult:
        """Execute slots until the stopping condition fires."""
        budget = stopping.require_slot_budget()
        n = len(self._ids)
        cov = np.full((n, n), -1.0)
        uncovered = int(self._is_link.sum())
        slots_executed = 0

        for t in range(budget):
            if stopping.stop_on_full_coverage and uncovered == 0:
                break
            uncovered -= self._run_slot(t, cov)
            slots_executed = t + 1

        return self._build_result(cov, slots_executed)

    def _run_slot(self, t: int, cov: np.ndarray) -> int:
        n = len(self._ids)
        active = self._offsets <= t
        faults = self._faults
        if faults is not None:
            faults.begin_slot(t)
            if faults.has_churn:
                active = active & faults.alive_mask(t)
        if not active.any():
            return 0
        local = t - self._offsets
        p = self._schedule.probabilities(local)

        transmit = (self._rng.random(n) < p) & active
        listen = active & ~transmit
        self._tx_slots += transmit
        self._rx_slots += listen
        if not transmit.any() or not listen.any():
            return 0

        pick = self._rng.integers(0, self._sizes)
        chan = self._chan_flat[self._chan_starts[:-1] + pick]
        if faults is not None and faults.has_spectrum:
            # Suppress blocked transmitters (they sense the blocker and
            # defer) and blocked listeners (they hear only its signal);
            # the slots still count as spent radio activity above.
            suppressed = faults.blocked_mask()[self._row_idx, chan]
            if suppressed.any():
                transmit = transmit & ~suppressed
                listen = listen & ~suppressed
                if not transmit.any() or not listen.any():
                    return 0

        # Per-transmitter one-hot over channels, plus the identity-
        # weighted copy: E[v, c, 0] = [v transmits on c],
        # E[v, c, 1] = v's index if so.
        n = len(self._ids)
        tx_idx = np.flatnonzero(transmit)
        e = np.zeros((self._num_dense, n, 2), dtype=np.float32)
        e[chan[tx_idx], tx_idx, 0] = 1.0
        e[chan[tx_idx], tx_idx, 1] = self._node_idx[tx_idx]
        # Batched matmul (BLAS): r[c, u, 0] = audible transmitters on c
        # as heard by u; r[c, u, 1] = sum of their indices.
        r = np.matmul(self._adj3, e)
        counts = r[chan, self._row_idx, 0]
        weighted = r[chan, self._row_idx, 1]

        self._collisions += listen & (counts >= 1.5)
        clear_mask = listen & (np.abs(counts - 1.0) < 0.25)
        self._clear += clear_mask
        if not clear_mask.any():
            return 0
        receivers = np.flatnonzero(clear_mask)
        senders = np.rint(weighted[receivers]).astype(np.int64)
        if self._erasure_prob > 0.0:
            keep = self._rng.random(receivers.size) >= self._erasure_prob
            receivers, senders = receivers[keep], senders[keep]
            if receivers.size == 0:
                return 0
        if faults is not None and faults.has_loss:
            keep = faults.keep_mask(senders, receivers, float(t), self._rng)
            receivers, senders = receivers[keep], senders[keep]
            if receivers.size == 0:
                return 0
        fresh = cov[senders, receivers] < 0
        if not fresh.any():
            return 0
        cov[senders[fresh], receivers[fresh]] = float(t)
        return int(fresh.sum())

    def _build_result(self, cov: np.ndarray, slots_executed: int) -> DiscoveryResult:
        coverage: Dict[Tuple[int, int], Optional[float]] = {}
        tables: Dict[int, Dict[int, frozenset]] = {nid: {} for nid in self._ids}
        for link in self._network.links():
            i = self._index[link.transmitter]
            j = self._index[link.receiver]
            t = cov[i, j]
            coverage[link.key] = None if t < 0 else float(t)
            if t >= 0:
                tables[link.receiver][link.transmitter] = link.span
        completed = all(v is not None for v in coverage.values())
        metadata: Dict[str, object] = {
            "engine": "slotted-fast",
            "erasure_prob": self._erasure_prob,
            "radio_activity": {
                nid: {
                    "tx": int(self._tx_slots[self._index[nid]]),
                    "rx": int(self._rx_slots[self._index[nid]]),
                    "quiet": 0,
                }
                for nid in self._ids
            },
            "collisions": {
                nid: int(self._collisions[self._index[nid]])
                for nid in self._ids
            },
            "clear_receptions": {
                nid: int(self._clear[self._index[nid]])
                for nid in self._ids
            },
        }
        if self._faults is not None:
            metadata["faults"] = self._faults.describe()
        return DiscoveryResult(
            time_unit="slots",
            coverage=coverage,
            horizon=float(slots_executed),
            completed=completed,
            neighbor_tables=tables,
            start_times={
                nid: float(self._offsets[self._index[nid]]) for nid in self._ids
            },
            network_params=self._network.parameter_summary(),
            metadata=metadata,
        )
