"""Generic discrete-event simulation driver.

:class:`DiscreteEventEngine` runs an :class:`~repro.sim.events.EventQueue`
until a time horizon, an event budget, or an external stop request.
Domain engines (the asynchronous radio engine) own one of these and
schedule their domain events on it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..exceptions import SimulationError
from .events import Event, EventQueue

__all__ = ["DiscreteEventEngine"]


class DiscreteEventEngine:
    """Runs events in time order until a stopping condition is met."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._stop_requested = False
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._queue.now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far."""
        return self._events_executed

    def schedule(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule an event; see :meth:`EventQueue.schedule`."""
        return self._queue.schedule(time, action, label)

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.schedule(self.now + delay, action, label)

    def request_stop(self) -> None:
        """Stop the run after the currently executing event completes."""
        self._stop_requested = True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events until exhaustion, ``until``, or a stop request.

        Args:
            until: Do not execute events scheduled after this time (they
                remain queued).
            max_events: Execute at most this many (further) events.

        Returns:
            The simulation time when the run stopped.
        """
        self._stop_requested = False
        executed_this_run = 0
        while not self._stop_requested:
            if max_events is not None and executed_this_run >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                return until
            event = self._queue.pop_next()
            assert event is not None
            event.action()
            self._events_executed += 1
            executed_this_run += 1
        return self.now
