"""Runner for self-terminating discovery (termination-detection extension).

Runs a synchronous or asynchronous algorithm wrapped in the quiescence
stop rule of :mod:`repro.core.termination` and reports, besides the
usual :class:`~repro.sim.results.DiscoveryResult`:

* when each node stopped (local slot / frame);
* *false stops* — nodes that stopped while still missing one of their
  own neighbors;
* whether the global output was complete despite everyone stopping on
  their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.registry import make_async_factory, make_sync_factory
from ..core.termination import (
    SelfTerminatingAsyncProtocol,
    SelfTerminatingProtocol,
    TerminationPolicy,
)
from ..net.network import M2HeWNetwork
from .async_engine import AsyncSimulator
from .results import DiscoveryResult
from .rng import RngFactory, SeedLike
from .runner import make_clocks
from .slotted import SlottedSimulator
from .stopping import StoppingCondition

__all__ = ["TerminationOutcome", "run_terminating_sync", "run_terminating_async"]


@dataclass
class TerminationOutcome:
    """Result of a self-terminating discovery run.

    Attributes:
        result: The usual discovery result (run to the full budget; the
            oracle stop is disabled since nodes stop themselves).
        terminated_at: Local stop time per node; ``None`` = never stopped.
        false_stops: Nodes that stopped with their own table incomplete.
        all_stopped: Every node terminated within the budget.
        output_complete: Every node's final table equals ground truth.
    """

    result: DiscoveryResult
    terminated_at: Dict[int, Optional[float]]
    false_stops: List[int]
    all_stopped: bool
    output_complete: bool


def _grade(network: M2HeWNetwork, result: DiscoveryResult, stops) -> TerminationOutcome:
    false_stops = []
    complete = True
    for nid in network.node_ids:
        truth = network.discoverable_neighbors(nid)
        found = frozenset(result.neighbor_tables[nid])
        if found != truth:
            complete = False
            if stops[nid] is not None:
                false_stops.append(nid)
    return TerminationOutcome(
        result=result,
        terminated_at=dict(stops),
        false_stops=sorted(false_stops),
        all_stopped=all(v is not None for v in stops.values()),
        output_complete=complete,
    )


def run_terminating_sync(
    network: M2HeWNetwork,
    protocol: str,
    *,
    seed: SeedLike,
    max_slots: int,
    quiet_threshold: int,
    delta_est: Optional[int] = None,
    policy: TerminationPolicy = TerminationPolicy.BEACON,
) -> TerminationOutcome:
    """Synchronous discovery where nodes stop via the quiescence rule.

    Args:
        network: The network instance.
        protocol: One of the synchronous algorithm names.
        seed: Trial seed.
        max_slots: Hard budget (runs to the end; no oracle stop).
        quiet_threshold: Slots without a new neighbor before stopping.
        delta_est: Degree bound where the protocol needs one.
        policy: SLEEP or BEACON after stopping.
    """
    inner_factory = make_sync_factory(protocol, delta_est=delta_est)

    def factory(nid, chs, rng):
        return SelfTerminatingProtocol(
            inner_factory(nid, chs, rng), quiet_threshold, policy
        )

    sim = SlottedSimulator(network, factory, RngFactory(seed))
    result = sim.run(
        StoppingCondition(max_slots=max_slots, stop_on_full_coverage=False)
    )
    result.metadata["protocol"] = protocol
    result.metadata["quiet_threshold"] = quiet_threshold
    result.metadata["termination_policy"] = policy.value
    stops = {
        nid: proto.terminated_at for nid, proto in sim.protocols.items()
    }
    return _grade(network, result, stops)


def run_terminating_async(
    network: M2HeWNetwork,
    *,
    seed: SeedLike,
    max_frames_per_node: int,
    quiet_threshold: int,
    delta_est: int,
    frame_length: float = 1.0,
    drift_bound: float = 0.0,
    clock_model: str = "constant",
    start_spread: float = 0.0,
    policy: TerminationPolicy = TerminationPolicy.BEACON,
) -> TerminationOutcome:
    """Asynchronous (Algorithm 4) twin of :func:`run_terminating_sync`."""
    rng_factory = RngFactory(seed)
    inner_factory = make_async_factory("algorithm4", delta_est=delta_est)

    wrappers: Dict[int, SelfTerminatingAsyncProtocol] = {}

    def factory(nid, chs, rng):
        wrapper = SelfTerminatingAsyncProtocol(
            inner_factory(nid, chs, rng), quiet_threshold, policy
        )
        wrappers[nid] = wrapper
        return wrapper

    env_rng = rng_factory.stream("environment")
    clocks = make_clocks(network, clock_model, drift_bound, env_rng)
    starts = {
        nid: float(env_rng.uniform(0.0, start_spread)) if start_spread > 0 else 0.0
        for nid in network.node_ids
    }
    sim = AsyncSimulator(
        network,
        factory,
        rng_factory,
        frame_length=frame_length,
        clocks=clocks,
        start_times=starts,
    )
    result = sim.run(
        StoppingCondition(
            max_frames_per_node=max_frames_per_node,
            stop_on_full_coverage=False,
        )
    )
    result.metadata["protocol"] = "algorithm4"
    result.metadata["quiet_threshold"] = quiet_threshold
    result.metadata["termination_policy"] = policy.value
    stops = {nid: wrappers[nid].terminated_at for nid in network.node_ids}
    return _grade(network, result, stops)
