"""Execution traces.

The asynchronous analysis (Lemmas 4, 7, 8) reasons about *frames* — when
each node's frames and slots start and end in real time, which channel
the node tuned to and whether it transmitted. :class:`FrameRecord`
captures exactly that, and :class:`ExecutionTrace` collects records per
node so :mod:`repro.analysis.alignment` can verify the lemmas on real
executions.

The synchronous engines can record the lighter :class:`SlotRecord`
stream for debugging and coverage estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.base import Mode
from ..exceptions import SimulationError

__all__ = ["FrameRecord", "SlotRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class FrameRecord:
    """One frame of one node, with its real-time geometry.

    Attributes:
        node_id: The node whose frame this is.
        frame_index: Local frame counter (0-based from the node's start).
        start: Real start time of the frame.
        end: Real end time of the frame.
        slot_bounds: Real times of the frame's internal slot boundaries,
            length 4 for the paper's 3-slot frames:
            ``[start, b1, b2, end]``.
        mode: Transmit or listen for the whole frame.
        channel: Channel tuned to for the whole frame.
    """

    node_id: int
    frame_index: int
    start: float
    end: float
    slot_bounds: Tuple[float, ...]
    mode: Mode
    channel: Optional[int]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(
                f"frame {self.frame_index} of node {self.node_id} has "
                f"non-positive duration [{self.start}, {self.end}]"
            )
        bounds = self.slot_bounds
        if len(bounds) < 2 or abs(bounds[0] - self.start) > 1e-9 or abs(
            bounds[-1] - self.end
        ) > 1e-9:
            raise SimulationError(
                f"slot bounds {bounds} do not span frame "
                f"[{self.start}, {self.end}]"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise SimulationError(f"slot bounds not increasing: {bounds}")

    @property
    def duration(self) -> float:
        """Real-time length of the frame."""
        return self.end - self.start

    def overlaps(self, other: "FrameRecord") -> bool:
        """Whether the two frames overlap in real time (open intervals)."""
        return self.start < other.end and other.start < self.end

    def slot_interval(self, slot: int) -> Tuple[float, float]:
        """Real ``(start, end)`` of the frame's ``slot``-th slot (0-based)."""
        if not 0 <= slot < len(self.slot_bounds) - 1:
            raise SimulationError(
                f"slot {slot} out of range for {len(self.slot_bounds) - 1}-slot frame"
            )
        return self.slot_bounds[slot], self.slot_bounds[slot + 1]

    @property
    def num_slots(self) -> int:
        """Number of slots in the frame."""
        return len(self.slot_bounds) - 1


@dataclass(frozen=True)
class SlotRecord:
    """One synchronous slot decision of one node."""

    node_id: int
    global_slot: int
    local_slot: int
    mode: Mode
    channel: Optional[int]


class ExecutionTrace:
    """Per-node collections of frame and slot records."""

    def __init__(self) -> None:
        self._frames: Dict[int, List[FrameRecord]] = {}
        self._slots: Dict[int, List[SlotRecord]] = {}

    def add_frame(self, record: FrameRecord) -> None:
        """Append a frame record (frames must arrive in time order)."""
        frames = self._frames.setdefault(record.node_id, [])
        if frames and record.start < frames[-1].end - 1e-9:
            raise SimulationError(
                f"node {record.node_id} frame {record.frame_index} starts at "
                f"{record.start} before previous frame ends at {frames[-1].end}"
            )
        frames.append(record)

    def add_slot(self, record: SlotRecord) -> None:
        """Append a synchronous slot record."""
        self._slots.setdefault(record.node_id, []).append(record)

    @property
    def node_ids(self) -> List[int]:
        """Nodes with at least one record."""
        return sorted(set(self._frames) | set(self._slots))

    def frames_of(self, node_id: int) -> List[FrameRecord]:
        """All frame records of ``node_id``, in time order."""
        return list(self._frames.get(node_id, []))

    def slots_of(self, node_id: int) -> List[SlotRecord]:
        """All slot records of ``node_id``, in order."""
        return list(self._slots.get(node_id, []))

    def full_frames_of(self, node_id: int, after: float) -> List[FrameRecord]:
        """Frames of ``node_id`` that start at or after ``after``.

        These are the "full frames after T" that Lemmas 7-8 and Theorem 9
        count (a frame already in progress at ``after`` is partial).
        """
        return [f for f in self._frames.get(node_id, []) if f.start >= after]

    def total_frames(self) -> int:
        """Total frame records across all nodes."""
        return sum(len(v) for v in self._frames.values())
