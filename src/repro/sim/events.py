"""Event primitives for the discrete-event simulation core.

An :class:`EventQueue` is a priority queue of timestamped callbacks with
deterministic tie-breaking: events at equal times fire in the order they
were scheduled (FIFO), which keeps runs bit-reproducible across Python
versions and platforms.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..exceptions import SimulationError

__all__ = ["Action", "Event", "EventQueue"]

Action = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; ``seq`` is the global scheduling
    counter, giving FIFO order among simultaneous events.
    """

    time: float
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark this event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A heap-based future event list."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: float, action: Action, label: str = "") -> Event:
        """Schedule ``action`` at ``time``; returns a cancellable handle.

        Raises:
            SimulationError: If ``time`` precedes the current time —
                scheduling into the past means the model is broken.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before now {self._now}"
            )
        event = Event(time=max(time, self._now), seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop_next(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
