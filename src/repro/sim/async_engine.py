"""Asynchronous continuous-time engine (paper §IV).

Each node owns a drifting :class:`~repro.sim.clock.Clock` and divides its
*local* time into frames of length ``L``, each split into three
equal-local-length slots. Because clocks drift, a frame's *real* length
varies within ``[L/(1+δ), L/(1−δ)]`` (eq. (10)) and frames of different
nodes are arbitrarily misaligned — exactly the regime Lemmas 4-8 reason
about.

Per frame, a node's protocol decides transmit-or-listen and a channel
(Algorithm 4). A transmitter emits its hello in each of its three slots;
a listener listens for the whole frame. Reception rule: a listener ``u``
decodes the copy carried by a slot-length transmission from ``v`` on
channel ``c`` iff

* ``v`` is audible to ``u`` and ``c ∈ A(u) ∩ A(v)``,
* ``u``'s listening frame (on ``c``) contains the *entire* slot, and
* no transmission from another node audible to ``u`` overlapped the slot
  on ``c``.

This is the conservative packet-level rule under which the paper's
aligned-frame-pair analysis guarantees delivery.

The engine records an :class:`~repro.sim.trace.ExecutionTrace` of frame
geometry when asked, which :mod:`repro.analysis.alignment` uses to
verify Lemmas 4 and 7 on actual executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..core.algorithm4 import SLOTS_PER_FRAME
from ..core.base import AsynchronousProtocol, Mode
from ..core.messages import HelloMessage
from ..exceptions import ConfigurationError, SimulationError
from ..net.network import M2HeWNetwork
from .clock import Clock, PerfectClock
from .engine import DiscreteEventEngine
from .medium import Medium, Transmission
from .results import DiscoveryResult
from .rng import RngFactory
from .stopping import StoppingCondition
from .trace import ExecutionTrace, FrameRecord

if TYPE_CHECKING:  # imported lazily at runtime to keep sim/faults decoupled
    from ..faults.plan import FaultPlan

__all__ = ["AsyncFactory", "AsyncSimulator"]

AsyncFactory = Callable[[int, frozenset, np.random.Generator], AsynchronousProtocol]


@dataclass
class _NodeState:
    protocol: AsynchronousProtocol
    clock: Clock
    start_real: float
    local_start: float
    frame_index: int = 0
    full_frames_since_ts: int = 0
    listening_channel: Optional[int] = None
    listen_start: float = 0.0
    listen_end: float = 0.0
    tx_seconds: float = 0.0
    rx_seconds: float = 0.0
    quiet_seconds: float = 0.0


class AsyncSimulator:
    """Event-driven asynchronous discovery simulator.

    Args:
        network: The M2HeW network instance.
        protocol_factory: ``(node_id, channels, rng) -> protocol``.
        rng_factory: Source of per-node random streams.
        frame_length: ``L`` — frame length in *local* time, identical
            for all nodes (paper §IV).
        clocks: Per-node clock; missing nodes get a :class:`PerfectClock`.
        start_times: Real time each node begins the protocol (its first
            frame starts then); missing nodes start at 0.
        erasure_prob: Per-copy loss probability (unreliable channels).
        trace: Optional trace receiving a :class:`FrameRecord` per frame.
        faults: Optional :class:`~repro.faults.plan.FaultPlan`; a
            trivial plan compiles away and leaves the run bit-identical
            to a fault-free one.
    """

    def __init__(
        self,
        network: M2HeWNetwork,
        protocol_factory: AsyncFactory,
        rng_factory: RngFactory,
        frame_length: float = 1.0,
        clocks: Optional[Mapping[int, Clock]] = None,
        start_times: Optional[Mapping[int, float]] = None,
        erasure_prob: float = 0.0,
        trace: Optional[ExecutionTrace] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if frame_length <= 0:
            raise ConfigurationError(
                f"frame_length must be positive, got {frame_length}"
            )
        if not 0.0 <= erasure_prob < 1.0:
            raise ConfigurationError(
                f"erasure_prob must be in [0, 1), got {erasure_prob}"
            )
        self._network = network
        self._L = float(frame_length)
        self._erasure_prob = erasure_prob
        self._erasure_rng = rng_factory.stream("erasure")
        self._trace = trace
        self._faults = None
        if faults is not None:
            from ..faults.runtime import compile_plan

            self._faults = compile_plan(
                faults, network, rng_factory, time_unit="seconds"
            )

        clocks = dict(clocks or {})
        starts = dict(start_times or {})
        self._states: Dict[int, _NodeState] = {}
        self._hellos: Dict[int, HelloMessage] = {}
        for nid in network.node_ids:
            clock = clocks.get(nid) or PerfectClock()
            start_real = float(starts.get(nid, 0.0))
            if start_real < 0:
                raise ConfigurationError(
                    f"start time of node {nid} must be >= 0, got {start_real}"
                )
            if self._faults is not None:
                start_real = max(start_real, self._faults.join_time(nid))
                if self._faults.has_clock_faults:
                    clock = self._faults.wrap_clock(nid, clock)
            protocol = protocol_factory(
                nid, network.channels_of(nid), rng_factory.node_stream(nid)
            )
            if protocol.node_id != nid:
                raise SimulationError(
                    f"protocol factory returned node id {protocol.node_id} "
                    f"for node {nid}"
                )
            self._states[nid] = _NodeState(
                protocol=protocol,
                clock=clock,
                start_real=start_real,
                local_start=clock.local_from_real(start_real),
            )
            self._hellos[nid] = protocol.hello()

        self._t_s = max(st.start_real for st in self._states.values())
        # Per-channel hearing sets (also carries the channel-dependent
        # propagation extension).
        self._hears_on: Dict[int, Dict[int, frozenset]] = {
            nid: {
                c: network.hears_on(nid, c)
                for c in network.channels_of(nid)
            }
            for nid in network.node_ids
        }
        self._medium = Medium()
        self._listeners_on: Dict[int, Set[int]] = {}
        self._engine = DiscreteEventEngine()

        self._coverage: Dict[Tuple[int, int], Optional[float]] = {
            link.key: None for link in network.links()
        }
        self._uncovered = len(self._coverage)
        self._stopping: Optional[StoppingCondition] = None
        self._nodes_short_of_frames = len(self._states)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def all_started_time(self) -> float:
        """``T_s`` — the real time by which every node has started."""
        return self._t_s

    def run(self, stopping: StoppingCondition) -> DiscoveryResult:
        """Run until the stopping condition fires; return the result."""
        stopping.require_async_budget()
        self._stopping = stopping
        if stopping.max_frames_per_node is None:
            self._nodes_short_of_frames = 0

        for nid, state in self._states.items():
            self._engine.schedule(
                state.start_real,
                lambda nid=nid: self._begin_frame(nid),
                label=f"start-{nid}",
            )

        horizon = self._engine.run(until=stopping.max_real_time)

        completed = all(t is not None for t in self._coverage.values())
        metadata: Dict[str, object] = {
            "engine": "async",
            "frame_length": self._L,
            "erasure_prob": self._erasure_prob,
            "t_s": self._t_s,
            "full_frames_since_ts": {
                nid: st.full_frames_since_ts
                for nid, st in self._states.items()
            },
            "radio_activity": {
                nid: {
                    "tx": st.tx_seconds,
                    "rx": st.rx_seconds,
                    "quiet": st.quiet_seconds,
                }
                for nid, st in self._states.items()
            },
        }
        if self._faults is not None:
            metadata["faults"] = self._faults.describe()
        return DiscoveryResult(
            time_unit="seconds",
            coverage=dict(self._coverage),
            horizon=float(horizon),
            completed=completed,
            neighbor_tables={
                nid: st.protocol.neighbor_table.as_dict()
                for nid, st in self._states.items()
            },
            start_times={nid: st.start_real for nid, st in self._states.items()},
            network_params=self._network.parameter_summary(),
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # frame lifecycle
    # ------------------------------------------------------------------

    def _frame_bounds(self, state: _NodeState, k: int) -> List[float]:
        """Real times of the slot boundaries of frame ``k`` (length 4)."""
        base = state.local_start + k * self._L
        return [
            state.clock.real_from_local(base + j * self._L / SLOTS_PER_FRAME)
            for j in range(SLOTS_PER_FRAME + 1)
        ]

    def _begin_frame(self, nid: int) -> None:
        state = self._states[nid]
        k = state.frame_index
        bounds = self._frame_bounds(state, k)
        if (
            self._faults is not None
            and self._faults.crash_time(nid) <= bounds[0] + 1e-12
        ):
            self._halt_crashed_node(state)
            return
        decision = state.protocol.decide_frame(k)

        frame_duration = bounds[-1] - bounds[0]
        if decision.mode is Mode.TRANSMIT:
            state.tx_seconds += frame_duration
        elif decision.mode is Mode.LISTEN:
            state.rx_seconds += frame_duration
        else:
            state.quiet_seconds += frame_duration

        if decision.mode is Mode.TRANSMIT:
            assert decision.channel is not None
            if decision.channel not in state.protocol.channels:
                raise SimulationError(
                    f"node {nid} transmitted on unavailable channel "
                    f"{decision.channel}"
                )
            for j in range(SLOTS_PER_FRAME):
                if self._faults is not None and self._faults.blocked_during(
                    nid, decision.channel, bounds[j], bounds[j + 1]
                ):
                    # The transmitter senses the blocker (PU / jammer)
                    # during this slot and defers; the slot is wasted.
                    continue
                tx = Transmission(
                    sender=nid,
                    channel=decision.channel,
                    start=bounds[j],
                    end=bounds[j + 1],
                    message=self._hellos[nid],
                )
                self._engine.schedule(
                    tx.start, lambda tx=tx: self._medium.begin(tx), label="tx-begin"
                )
                self._engine.schedule(
                    tx.end, lambda tx=tx: self._end_transmission(tx), label="tx-end"
                )
        elif decision.mode is Mode.LISTEN:
            assert decision.channel is not None
            state.listening_channel = decision.channel
            state.listen_start = bounds[0]
            state.listen_end = bounds[-1]
            self._listeners_on.setdefault(decision.channel, set()).add(nid)
        # QUIET frames: transceiver off, nothing to register.

        if self._trace is not None:
            self._trace.add_frame(
                FrameRecord(
                    node_id=nid,
                    frame_index=k,
                    start=bounds[0],
                    end=bounds[-1],
                    slot_bounds=tuple(bounds),
                    mode=decision.mode,
                    channel=decision.channel,
                )
            )

        self._engine.schedule(
            bounds[-1], lambda nid=nid: self._end_frame(nid), label=f"frame-end-{nid}"
        )

    def _halt_crashed_node(self, state: _NodeState) -> None:
        """Crash-stop: the node schedules no further frames. If it had
        not yet met a frame budget it never will, so the frame-budget
        stopping rule must stop counting on it."""
        assert self._stopping is not None
        budget = self._stopping.max_frames_per_node
        if budget is not None and state.full_frames_since_ts < budget:
            self._nodes_short_of_frames -= 1
            if self._nodes_short_of_frames == 0:
                self._engine.request_stop()

    def _end_frame(self, nid: int) -> None:
        state = self._states[nid]
        if state.listening_channel is not None:
            listeners = self._listeners_on.get(state.listening_channel)
            if listeners is not None:
                listeners.discard(nid)
            state.listening_channel = None

        frame_start = self._frame_bounds(state, state.frame_index)[0]
        if frame_start >= self._t_s - 1e-12:
            state.full_frames_since_ts += 1
            assert self._stopping is not None
            budget = self._stopping.max_frames_per_node
            if (
                budget is not None
                and state.full_frames_since_ts == budget
            ):
                self._nodes_short_of_frames -= 1
                if self._nodes_short_of_frames == 0:
                    self._engine.request_stop()
                    return

        state.frame_index += 1
        self._begin_frame(nid)

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------

    def _end_transmission(self, tx: Transmission) -> None:
        self._medium.end(tx)
        listeners = self._listeners_on.get(tx.channel)
        if not listeners:
            return
        for u in list(listeners):
            state = self._states[u]
            audible = self._hears_on[u].get(tx.channel, frozenset())
            if tx.sender not in audible:
                continue
            if tx.channel not in state.protocol.channels:
                # Listener registration guarantees this, but keep the
                # model check: u only tunes to channels in A(u).
                raise SimulationError(
                    f"node {u} listening on unavailable channel {tx.channel}"
                )
            if not (
                state.listen_start <= tx.start + 1e-12
                and tx.end <= state.listen_end + 1e-12
            ):
                continue  # slot not wholly inside u's listening frame
            if tx.interferers(audible):
                continue  # collision at u
            if self._faults is not None and self._faults.blocked_during(
                u, tx.channel, tx.start, tx.end
            ):
                continue  # u hears only the blocker's signal
            if (
                self._erasure_prob > 0.0
                and self._erasure_rng.random() < self._erasure_prob
            ):
                continue
            if (
                self._faults is not None
                and self._faults.has_loss
                and not self._faults.keep_delivery(
                    tx.sender, u, tx.end, self._erasure_rng
                )
            ):
                continue
            state.protocol.on_receive(
                tx.message, float(state.frame_index), tx.channel
            )
            key = (tx.sender, u)
            if self._coverage.get(key, 0.0) is None:
                self._coverage[key] = tx.end
                self._uncovered -= 1
                assert self._stopping is not None
                if self._stopping.stop_on_full_coverage and self._uncovered == 0:
                    self._engine.request_stop()
