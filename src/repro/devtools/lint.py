"""AST-based linter enforcing the repo's determinism and model invariants.

The linter parses each Python file once, builds a :class:`ModuleContext`
describing where the module sits in the package (simulation-critical
packages get the strict D-series treatment), and runs every registered
:class:`Rule` over the tree. Findings carry a stable rule ID
(``D101`` … ``Q303``) documented in ``docs/static_analysis.md``.

Suppression pragmas::

    risky_call()  # lint: disable=D104
    # lint: disable=Q303   (standalone before any statement: whole file)

A pragma on the same line as a finding suppresses the listed rules for
that line only; a standalone pragma comment above the first statement of
the module suppresses them for the whole file.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "AnyFunctionDef",
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "PathLike",
    "SIM_CRITICAL_PACKAGES",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]

PathLike = Union[Path, str]

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Subpackages of ``repro`` whose code paths feed simulation results.
#: The D-series determinism rules apply only here: analysis, apps and
#: the CLI post-process results and may legitimately touch wall clocks.
SIM_CRITICAL_PACKAGES = frozenset(
    {"core", "sim", "net", "baselines", "workloads", "faults"}
)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class LintError:
    """A file the linter could not parse."""

    path: str
    message: str


@dataclass
class ModuleContext:
    """Everything a rule needs to know about the module under analysis."""

    path: Path
    source: str
    tree: ast.Module
    #: Dotted module path relative to the ``repro`` package root, e.g.
    #: ``"sim.engine"`` or ``""`` for ``repro/__init__.py``; ``None``
    #: when the file lives outside the ``repro`` package (tests, docs).
    module: Optional[str] = None

    @property
    def in_repro(self) -> bool:
        return self.module is not None

    @property
    def subpackage(self) -> Optional[str]:
        """First component of :attr:`module` (``"sim"``, ``"core"``, …)."""
        if self.module is None:
            return None
        return self.module.split(".", 1)[0] if self.module else ""

    @property
    def sim_critical(self) -> bool:
        """True when the module belongs to a simulation-critical package."""
        return self.subpackage in SIM_CRITICAL_PACKAGES


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`rationale`
    as class attributes and implement :meth:`check`, yielding
    :class:`Finding` objects. Use :meth:`finding` to build one with the
    context's path filled in.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_for_path(path: Path) -> Optional[str]:
    """Dotted path relative to the ``repro`` package, or ``None``."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    inner = parts[idx + 1 :]
    if not inner:
        return None
    if inner[-1] == "__init__.py":
        inner = inner[:-1]
    elif inner[-1].endswith(".py"):
        inner = inner[:-1] + [inner[-1][:-3]]
    return ".".join(inner)


def _suppressions(source: str, tree: ast.Module) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Parse ``# lint: disable=`` pragmas.

    Returns ``(file_level, per_line)`` where ``file_level`` is the set of
    rule IDs disabled for the whole module and ``per_line`` maps line
    numbers to rule IDs disabled on that line.
    """
    first_stmt_line = tree.body[0].lineno if tree.body else float("inf")
    file_level: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",")}
        if line.lstrip().startswith("#") and lineno < first_stmt_line:
            file_level |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return file_level, per_line


@dataclass
class LintReport:
    """Findings and parse errors from one lint run."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        lines.extend(f"{e.path}: error: {e.message}" for e in self.errors)
        summary = (
            f"{len(self.findings)} finding(s), {len(self.errors)} error(s) "
            f"in {self.files_checked} file(s)"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "errors": [
                    {"path": e.path, "message": e.message} for e in self.errors
                ],
                "files_checked": self.files_checked,
            },
            indent=2,
        )


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule_id)


def lint_source(
    source: str,
    path: PathLike = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; raises ``SyntaxError`` on bad input."""
    from .rules import all_rules

    path = Path(path)
    tree = ast.parse(source, filename=str(path))
    ctx = ModuleContext(
        path=path, source=source, tree=tree, module=_module_for_path(path)
    )
    file_level, per_line = _suppressions(source, tree)
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if finding.rule_id in file_level:
                continue
            if finding.rule_id in per_line.get(finding.line, ()):
                continue
            findings.append(finding)
    return sorted(findings, key=_sort_key)


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable[PathLike],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` and aggregate a report."""
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append(LintError(path=str(path), message=str(exc)))
            continue
        report.files_checked += 1
        try:
            report.findings.extend(lint_source(source, path, rules=rules))
        except SyntaxError as exc:
            report.errors.append(LintError(path=str(path), message=str(exc)))
    report.findings.sort(key=_sort_key)
    return report
