"""Whole-program determinism audit (``m2hew audit``).

``m2hew lint`` checks files one at a time; the properties this module
audits are **global**: RNG stream keys must never collide across
modules, no code path may let container- or filesystem-ordering leak
into results, and the four engines plus the runner/batch/CLI plumbing
must keep their keyword surfaces in lockstep. Each is a property of the
*project*, not of any single file, so the audit parses every module
under the given roots once into a :class:`ProjectContext` and runs
whole-program :class:`AuditRule` packs over it:

* **S-series** (:mod:`repro.devtools.rules.streams`) — stream
  provenance: every ``RngFactory.stream(key)`` / ``node_stream`` /
  ``fork(label)`` call site is resolved into a key template and
  collected into a :class:`~repro.devtools.rules.streams.StreamRegistry`;
  unifiable templates, colliding constants and dynamic keys are flagged.
* **P-series** (:mod:`repro.devtools.rules.parallel_order`) —
  parallel-ordering hazards: set iteration feeding accumulation,
  unsorted filesystem enumeration, ``as_completed`` consumption,
  ``id()``/``hash()`` sort keys, wall-clock-derived seeds.
* **C-series** (:mod:`repro.devtools.rules.contracts`) — cross-layer
  parity contracts: engine keyword surfaces, batchable-parameter
  plumbing, call-site keyword validity, typed-exception replay
  coordinates, CLI flag plumbing.

Findings reuse the linter's :class:`~repro.devtools.lint.Finding` type
and the same ``# lint: disable=<ID>`` pragma mechanism, so one
suppression syntax covers both tools.

The audit also maintains the **stream-registry snapshot**
(``stream_registry.json`` next to this module): a committed,
machine-readable map of every stream/fork key template in the project.
``m2hew audit`` regenerates the registry on every run and fails with a
readable diff when it drifts from the snapshot, so adding a stream key
is always a reviewed change.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .lint import (
    Finding,
    LintError,
    ModuleContext,
    PathLike,
    _module_for_path,
    _sort_key,
    _suppressions,
    iter_python_files,
)

__all__ = [
    "AuditReport",
    "AuditRule",
    "DEFAULT_REGISTRY_PATH",
    "ProjectContext",
    "build_project",
    "registry_drift",
    "run_audit",
]

#: The committed stream-registry snapshot ships inside the package so
#: the drift check works from any checkout or installed copy.
DEFAULT_REGISTRY_PATH = Path(__file__).resolve().parent / "stream_registry.json"


@dataclass
class ProjectContext:
    """Every parsed module of one audit run, plus per-file suppressions.

    Attributes:
        modules: Dotted module path (relative to the ``repro`` package
            root, e.g. ``"sim.rng"``) to the parsed module. Only files
            inside a ``repro`` package land here.
        extra: Parsed files outside any ``repro`` package (scripts,
            scratch fixtures); whole-program rules still see them.
        errors: Files that could not be read or parsed.
    """

    modules: Dict[str, ModuleContext] = field(default_factory=dict)
    extra: List[ModuleContext] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    _suppressions: Dict[str, Tuple[Set[str], Dict[int, Set[str]]]] = field(
        default_factory=dict
    )

    @property
    def files_checked(self) -> int:
        return len(self.modules) + len(self.extra)

    def all_modules(self) -> Iterator[ModuleContext]:
        """Every parsed module, ``repro`` package first, in stable order."""
        for name in sorted(self.modules):
            yield self.modules[name]
        for ctx in sorted(self.extra, key=lambda c: str(c.path)):
            yield ctx

    def get(self, module: str) -> Optional[ModuleContext]:
        """The parsed module for a dotted path, or ``None``."""
        return self.modules.get(module)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a ``# lint: disable=`` pragma covers this finding."""
        file_level, per_line = self._suppressions.get(
            finding.path, (set(), {})
        )
        if finding.rule_id in file_level:
            return True
        return finding.rule_id in per_line.get(finding.line, set())


def build_project(paths: Iterable[PathLike]) -> ProjectContext:
    """Parse every ``*.py`` file under ``paths`` into a project context."""
    project = ProjectContext()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            project.errors.append(LintError(path=str(path), message=str(exc)))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            project.errors.append(LintError(path=str(path), message=str(exc)))
            continue
        ctx = ModuleContext(
            path=path,
            source=source,
            tree=tree,
            module=_module_for_path(path),
        )
        project._suppressions[str(path)] = _suppressions(source, tree)
        if ctx.module is not None and ctx.module not in project.modules:
            project.modules[ctx.module] = ctx
        else:
            project.extra.append(ctx)
    return project


class AuditRule:
    """Base class for whole-program audit rules.

    Unlike :class:`~repro.devtools.lint.Rule`, which sees one module at
    a time, an audit rule's :meth:`check` receives the whole
    :class:`ProjectContext` — it may correlate call sites across
    modules, resolve definitions in other files, or inspect the project
    as a graph.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class AuditReport:
    """Findings, parse errors and the generated registry of one audit run."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    #: Serialized stream registry generated from the audited sources
    #: (the S-series analyzer's artifact; compare against the committed
    #: snapshot with :func:`registry_drift`).
    registry: Dict[str, object] = field(default_factory=dict)
    #: Human-readable registry-drift lines (empty = snapshot matches or
    #: the check was skipped).
    drift: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors and not self.drift

    def to_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        lines.extend(f"{e.path}: error: {e.message}" for e in self.errors)
        if self.drift:
            lines.append("stream-registry drift (run with --update-registry "
                         "after reviewing):")
            lines.extend(f"  {entry}" for entry in self.drift)
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.errors)} error(s), "
            f"{len(self.drift)} drift line(s) in {self.files_checked} file(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.as_dict() for f in self.findings],
                "errors": [
                    {"path": e.path, "message": e.message} for e in self.errors
                ],
                "registry": self.registry,
                "registry_drift": list(self.drift),
                "files_checked": self.files_checked,
            },
            indent=2,
        )


def registry_drift(
    fresh: Dict[str, object], snapshot_path: Path
) -> List[str]:
    """Compare a freshly generated registry against a committed snapshot.

    Returns human-readable drift lines; empty means the snapshot is
    current. A missing snapshot is itself drift — the registry is part
    of the reviewed source tree.
    """
    if not snapshot_path.exists():
        return [
            f"snapshot {snapshot_path} does not exist "
            "(generate it with --update-registry)"
        ]
    try:
        committed = json.loads(snapshot_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"snapshot {snapshot_path} is unreadable: {exc}"]
    if committed == fresh:
        return []
    lines: List[str] = []
    fresh_ns = fresh.get("namespaces", {})
    committed_ns = committed.get("namespaces", {})
    if not isinstance(fresh_ns, dict) or not isinstance(committed_ns, dict):
        return [f"snapshot {snapshot_path} has an unrecognized structure"]
    for namespace in sorted(set(fresh_ns) | set(committed_ns)):
        fresh_entries = {
            e["template"]: e for e in fresh_ns.get(namespace, ())
        }
        committed_entries = {
            e["template"]: e for e in committed_ns.get(namespace, ())
        }
        for template in sorted(set(fresh_entries) - set(committed_entries)):
            modules = ", ".join(fresh_entries[template]["modules"])
            lines.append(
                f"+ {namespace} key {template!r} (new, from {modules})"
            )
        for template in sorted(set(committed_entries) - set(fresh_entries)):
            lines.append(
                f"- {namespace} key {template!r} (in snapshot, not in source)"
            )
        for template in sorted(set(fresh_entries) & set(committed_entries)):
            if fresh_entries[template] != committed_entries[template]:
                lines.append(
                    f"~ {namespace} key {template!r}: snapshot "
                    f"{committed_entries[template]} != source "
                    f"{fresh_entries[template]}"
                )
    if not lines:
        lines.append(
            "registries differ outside namespace entries "
            "(schema or metadata change)"
        )
    return lines


def run_audit(
    paths: Iterable[PathLike],
    rules: Optional[Sequence[AuditRule]] = None,
    *,
    registry_path: Optional[Path] = None,
    check_registry: bool = True,
) -> AuditReport:
    """Run the whole-program audit over every ``*.py`` file in ``paths``.

    Args:
        paths: Files or directories to audit (typically ``src``).
        rules: Rule instances to run (default: every registered S/P/C
            rule from :func:`repro.devtools.rules.all_audit_rules`).
        registry_path: Snapshot to diff the generated stream registry
            against (default :data:`DEFAULT_REGISTRY_PATH`).
        check_registry: Set ``False`` to skip the snapshot comparison
            (the registry is still generated and reported).
    """
    from .rules import all_audit_rules
    from .rules.streams import build_registry

    project = build_project(paths)
    report = AuditReport(
        errors=list(project.errors), files_checked=project.files_checked
    )
    report.registry = build_registry(project).as_dict()
    for rule in rules if rules is not None else all_audit_rules():
        for finding in rule.check(project):
            if not project.suppressed(finding):
                report.findings.append(finding)
    report.findings.sort(key=_sort_key)
    if check_registry:
        report.drift = registry_drift(
            report.registry,
            registry_path if registry_path is not None else DEFAULT_REGISTRY_PATH,
        )
    return report
