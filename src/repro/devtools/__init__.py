"""Developer tooling for the repro codebase.

The centerpiece is :mod:`repro.devtools.lint`, an AST-based linter
enforcing the repo-specific invariants every empirical claim rests on:

* **D-series (determinism)** — all randomness in simulation packages
  must flow through :mod:`repro.sim.rng`; no wall-clock reads, no
  legacy global NumPy RNG state, no ``import random``.
* **M-series (model invariants)** — protocol classes must respect the
  paper's system model: neighbor state mutates only through the
  engine-sanctioned hooks, transmission probabilities derive from
  parameters rather than inline magic numbers, and every protocol uses
  its injected private random stream.
* **Q-series (hygiene)** — mutable default arguments, bare ``except:``
  clauses, and public symbols missing from ``__all__``.

Run it as ``m2hew lint [paths ...]`` or programmatically through
:func:`repro.devtools.lint.lint_paths`.
"""

from __future__ import annotations

from .lint import Finding, LintReport, lint_paths, lint_source

__all__ = ["Finding", "LintReport", "lint_paths", "lint_source"]
