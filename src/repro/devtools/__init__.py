"""Developer tooling for the repro codebase.

Two complementary static-analysis tools live here:

:mod:`repro.devtools.lint` — the per-file AST linter (``m2hew lint``):

* **D-series (determinism)** — all randomness in simulation packages
  must flow through :mod:`repro.sim.rng`; no wall-clock reads, no
  legacy global NumPy RNG state, no ``import random``.
* **M-series (model invariants)** — protocol classes must respect the
  paper's system model: neighbor state mutates only through the
  engine-sanctioned hooks, transmission probabilities derive from
  parameters rather than inline magic numbers, and every protocol uses
  its injected private random stream.
* **Q-series (hygiene)** — mutable default arguments, bare ``except:``
  clauses, and public symbols missing from ``__all__``.

:mod:`repro.devtools.audit` — the whole-program audit (``m2hew
audit``), for the global properties a per-file pass cannot see:

* **S-series (stream provenance)** — every ``RngFactory`` stream/fork
  key resolved into a template, collected into the committed
  ``stream_registry.json`` snapshot, and checked for collisions.
* **P-series (parallel ordering)** — set-iteration, filesystem and
  pool-completion ordering must never leak into seeds or results.
* **C-series (parity contracts)** — engine keyword surfaces, batchable
  parameter plumbing, typed-exception replay coordinates and CLI flag
  plumbing stay in lockstep across layers.

Run them as ``m2hew lint [paths ...]`` / ``m2hew audit [paths ...]`` or
programmatically through :func:`repro.devtools.lint.lint_paths` /
:func:`repro.devtools.audit.run_audit`.
"""

from __future__ import annotations

from .audit import AuditReport, run_audit
from .lint import Finding, LintReport, lint_paths, lint_source

__all__ = [
    "AuditReport",
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_source",
    "run_audit",
]
