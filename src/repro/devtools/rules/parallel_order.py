"""P-series audit rules: parallel-ordering determinism hazards.

The repo's parallel stack (``sim.parallel``, ``resilience``) promises
byte-identical archives for any worker count, and the analysis layer
turns trial lists into the tables in ``EXPERIMENTS.md``. Both promises
die quietly the moment an *ordering* the platform does not guarantee —
set iteration order, directory listing order, pool completion order,
object identity — leaks into seeds, results or accumulation. These
rules flag the syntactic forms that ordering leaks take.

Scope: the packages that compute or assemble results —
:data:`ORDER_SCOPE_PACKAGES` (``sim``, ``resilience``, ``faults``,
``analysis``, ``service`` — whose result store and job records are
rebuilt from directory listings — plus ``devtools`` itself so the
audit's own filesystem walks stay honest). P505 applies to the whole
``repro`` package except ``devtools``.

* **P501** — iterating a set (set literal, ``set()``/``frozenset()``
  call, set comprehension, or a local name bound to one). Set order is
  salted per process: a loop over one feeds process-dependent order
  into whatever it builds. Sort first (``sorted(...)``); reductions
  that are genuinely order-free (``sum``/``min``/``max``/``all``/
  ``any``/``len``) are recognized and exempt.
* **P502** — unsorted filesystem enumeration (``os.listdir``,
  ``os.scandir``, ``glob.glob``/``iglob``, ``Path.glob``/``rglob``/
  ``iterdir``). Listing order is filesystem-dependent; wrap the call
  in ``sorted(...)``.
* **P503** — ``concurrent.futures.as_completed`` consumption. Results
  arrive in completion order, which depends on scheduling; await
  futures in dispatch order and reassemble by index instead (the
  ``sim.parallel._collect_in_order`` idiom).
* **P504** — sorting keyed on object identity (``key=id`` /
  ``key=hash`` or a key function calling them). ``id()`` is an
  allocation address and ``hash()`` is salted for strings; both orders
  vary across processes.
* **P505** — wall-clock-derived seeds: a wall-clock read flowing into
  ``RngFactory``/``make_generator``/``spawn_generators``/
  ``derive_trial_seed``/``SeedSequence`` or into a ``seed=`` argument.
  D104 already bans wall clocks inside simulation packages; this closes
  the gap everywhere else in ``repro`` (``resilience``, ``analysis``,
  the CLI), where a timestamp seed makes a campaign unreplayable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..audit import AuditRule, ProjectContext
from ..lint import Finding, ModuleContext, dotted_name
from .determinism import _WALL_CLOCK_CALLS

__all__ = [
    "ORDER_SCOPE_PACKAGES",
    "SetIterationOrder",
    "UnsortedFilesystemIteration",
    "CompletionOrderConsumption",
    "IdentityOrderSort",
    "WallClockSeed",
]

#: Packages the ordering rules (P501–P504) apply to.
ORDER_SCOPE_PACKAGES = frozenset(
    {"sim", "resilience", "faults", "analysis", "devtools", "service"}
)

#: Builtins whose result is independent of their argument's iteration
#: order — a set-sourced comprehension consumed by one of these is fine.
_ORDER_FREE_REDUCERS = frozenset(
    {"sum", "min", "max", "all", "any", "len", "sorted", "set", "frozenset"}
)

_FS_ENUM_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob", "listdir", "scandir"}
)
_FS_ENUM_ATTRS = frozenset({"glob", "rglob", "iterdir"})


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _enclosing_call_name(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[str]:
    """Name of the nearest enclosing call consuming ``node``'s value.

    Walks up through expression wrappers (comprehensions, starred args)
    until a :class:`ast.Call` or a statement boundary is reached.
    """
    current = node
    while True:
        parent = parents.get(current)
        if parent is None or isinstance(parent, ast.stmt):
            return None
        if isinstance(parent, ast.Call) and current is not parent.func:
            return dotted_name(parent.func)
        if isinstance(
            parent,
            (
                ast.GeneratorExp,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.comprehension,
                ast.Starred,
                ast.keyword,
            ),
        ):
            current = parent
            continue
        return None


def _in_order_scope(ctx: ModuleContext) -> bool:
    return ctx.subpackage in ORDER_SCOPE_PACKAGES


def _is_set_expression(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset", "builtins.set", "builtins.frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _set_bound_names(scope: ast.AST) -> Set[str]:
    """Local names bound to a syntactic set expression in ``scope``.

    One level only — nested function scopes are analyzed separately —
    and deliberately over-approximate: a name ever assigned a set stays
    suspect for the whole scope (rebinding to a list later is exactly
    the kind of refactoring this rule should survive).
    """
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            if _is_set_expression(node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None and _is_set_expression(node.value, set()):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
    return names


class SetIterationOrder(AuditRule):
    rule_id = "P501"
    title = "iteration over a set feeds order into results"
    rationale = (
        "Set iteration order is salted per process: any loop over one "
        "that appends, seeds or accumulates produces worker-dependent "
        "output. Iterate sorted(...) instead."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.all_modules():
            if not _in_order_scope(ctx):
                continue
            parents = _parent_map(ctx.tree)
            set_names = _set_bound_names(ctx.tree)
            for node in ast.walk(ctx.tree):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append((node.iter, node))
                elif isinstance(
                    node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
                ):
                    for gen in node.generators:
                        iters.append((gen.iter, node))
                for iter_expr, owner in iters:
                    if not _is_set_expression(iter_expr, set_names):
                        continue
                    if isinstance(owner, ast.SetComp):
                        continue  # set -> set keeps order out of reach
                    consumer = _enclosing_call_name(owner, parents)
                    if (
                        consumer is not None
                        and consumer.rsplit(".", 1)[-1] in _ORDER_FREE_REDUCERS
                    ):
                        continue
                    yield self.finding(
                        ctx,
                        iter_expr,
                        "iterating a set exposes salted hash order; wrap "
                        "the iterable in sorted(...) (or reduce with an "
                        "order-free builtin)",
                    )


class UnsortedFilesystemIteration(AuditRule):
    rule_id = "P502"
    title = "unsorted directory enumeration"
    rationale = (
        "os.listdir / Path.glob / iterdir order is filesystem- and "
        "platform-dependent; archives, journals and reports must not "
        "inherit it. Wrap the enumeration in sorted(...)."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.all_modules():
            if not _in_order_scope(ctx):
                continue
            parents = _parent_map(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                is_fs = name in _FS_ENUM_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_ENUM_ATTRS
                )
                if not is_fs:
                    continue
                consumer = _enclosing_call_name(node, parents)
                if consumer is not None and consumer.rsplit(".", 1)[-1] == "sorted":
                    continue
                label = name or (
                    node.func.attr if isinstance(node.func, ast.Attribute) else "?"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{label}() enumerates the filesystem in platform "
                    "order; wrap the call in sorted(...) before anything "
                    "consumes it",
                )


class CompletionOrderConsumption(AuditRule):
    rule_id = "P503"
    title = "as_completed consumes pool results in completion order"
    rationale = (
        "Completion order depends on scheduling and load: results "
        "assembled from as_completed differ run to run. Await futures "
        "in dispatch order and reassemble by index "
        "(sim.parallel._collect_in_order is the idiom)."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.all_modules():
            if not _in_order_scope(ctx):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is not None and name.rsplit(".", 1)[-1] == "as_completed":
                    yield self.finding(
                        ctx,
                        node,
                        "as_completed() yields results in completion order; "
                        "collect futures in dispatch order and reassemble "
                        "by trial index instead",
                    )


def _key_uses_identity(key_expr: ast.expr) -> bool:
    if isinstance(key_expr, ast.Name) and key_expr.id in ("id", "hash"):
        return True
    for node in ast.walk(key_expr):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("id", "hash"):
                return True
    return False


class IdentityOrderSort(AuditRule):
    rule_id = "P504"
    title = "sort keyed on object identity or salted hash"
    rationale = (
        "id() is an allocation address and str hashes are salted per "
        "process; a sort keyed on either produces a different order in "
        "every worker. Sort on stable fields instead."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.all_modules():
            if not _in_order_scope(ctx):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                is_sort = name == "sorted" or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if not is_sort:
                    continue
                for kw in node.keywords:
                    if kw.arg == "key" and _key_uses_identity(kw.value):
                        yield self.finding(
                            ctx,
                            node,
                            "sort keyed on id()/hash() orders differently "
                            "in every process; key on stable fields "
                            "(names, indices, tuples of them)",
                        )


#: Seed sinks: calls whose arguments become RNG roots.
_SEED_SINKS = frozenset(
    {
        "RngFactory",
        "make_generator",
        "spawn_generators",
        "derive_trial_seed",
        "SeedSequence",
    }
)

_SEED_KEYWORDS = frozenset({"seed", "base_seed", "network_seed"})


def _contains_wall_clock(node: ast.AST) -> Optional[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name in _WALL_CLOCK_CALLS:
                return name
    return None


class WallClockSeed(AuditRule):
    rule_id = "P505"
    title = "wall-clock-derived seed"
    rationale = (
        "A timestamp seed makes the run unreplayable: no archive, "
        "journal or quarantine record can reproduce it. Every seed must "
        "come from configuration or the derive_trial_seed tree."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.all_modules():
            if not ctx.in_repro or ctx.subpackage == "devtools":
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                leaf = None if name is None else name.rsplit(".", 1)[-1]
                suspect_args = []
                if leaf in _SEED_SINKS:
                    suspect_args.extend(node.args)
                    suspect_args.extend(kw.value for kw in node.keywords)
                else:
                    suspect_args.extend(
                        kw.value
                        for kw in node.keywords
                        if kw.arg in _SEED_KEYWORDS
                    )
                for arg in suspect_args:
                    clock = _contains_wall_clock(arg)
                    if clock is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"seed derived from wall clock ({clock}()); "
                            "seeds must come from configuration or "
                            "derive_trial_seed so the run replays",
                        )
