"""C-series audit rules: cross-layer engine and plumbing parity contracts.

Four engines (reference, fast, async, batched), a trial runner, a
process-pool executor, a supervisor, a batch archiver and a CLI all
forward keyword arguments to one another. A renamed parameter or a flag
that stops being plumbed does not fail loudly at the drift site — it
fails three modules deeper as a runtime ``TypeError``, or worse, is
silently ignored and the campaign runs with the wrong configuration.
These rules cross-reference the layers so drift fails the audit at the
line that introduced it.

Every rule here skips quietly when its target modules are not part of
the audited tree (so auditing a scratch fixture directory does not
produce spurious contract findings) — *except* that auditing the real
package with a contract module missing is itself reported via C601.

* **C601** — engine constructor surfaces: each engine must accept the
  declared keyword set with the declared defaults (the shared subset —
  ``erasure_prob``, ``faults``, ``start_offsets`` — must mean the same
  thing everywhere).
* **C602** — call-site keyword validity: every call to a contract
  function or engine constructor may only use keywords the definition
  declares (the whole-program version of "no TypeError three modules
  deep").
* **C603** — ``_BATCHABLE_PARAMS`` (the runner-params the batched
  engine honors) must stay a subset of ``run_synchronous``'s keyword
  surface, or the vectorized fallback contract silently breaks.
* **C604** — replay coordinates: ``TrialExecutionError`` keeps its
  ``experiment``/``trial_indices``/``base_seed`` constructor fields,
  and every construction site of the typed trial errors passes
  ``trial_indices`` and ``base_seed`` so quarantine records and abort
  messages always carry replayable coordinates.
* **C605** — CLI flag plumbing: every ``add_argument`` destination in
  ``repro.cli`` must be read as ``args.<dest>`` somewhere, catching
  flags that parse but no longer reach the runner stack.
* **C606** — grid-cell coverage: every ``_BATCHABLE_PARAMS`` entry must
  be either a ``GridCell`` field or a declared dispatch-level parameter
  (schedule/stopping/engine selection). A batchable parameter the grid
  path cannot carry would be silently dropped when spec points fuse,
  while the per-spec path honors it — a byte-identity break the
  differential tests only catch for parameters they happen to vary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..audit import AuditRule, ProjectContext
from ..lint import Finding, ModuleContext, dotted_name

__all__ = [
    "ENGINE_CONTRACT",
    "CONTRACT_FUNCTIONS",
    "EngineSurfaceParity",
    "CallKeywordValidity",
    "BatchableParamsSubset",
    "GridCellCoverage",
    "ReplayCoordinateContract",
    "CliFlagPlumbing",
]

#: Engine constructors and the keyword surface each must expose.
#: ``rng_factories`` (plural) on the batched engine is deliberate — it
#: takes one factory per trial.
ENGINE_CONTRACT: Dict[str, Tuple[str, frozenset]] = {
    "sim.slotted": (
        "SlottedSimulator",
        frozenset(
            {"rng_factory", "start_offsets", "erasure_prob", "trace", "faults"}
        ),
    ),
    "sim.fast_slotted": (
        "FastSlottedSimulator",
        frozenset(
            {
                "rng_factory",
                "start_offsets",
                "erasure_prob",
                "faults",
                "reception",
            }
        ),
    ),
    "sim.async_engine": (
        "AsyncSimulator",
        frozenset({"rng_factory", "erasure_prob", "trace", "faults"}),
    ),
    "sim.batched": (
        "BatchedSlottedSimulator",
        frozenset(
            {"rng_factories", "start_offsets", "erasure_prob", "faults"}
        ),
    ),
}

#: Keyword parameters that must carry the same default on every engine
#: that exposes them — the "absent means the same thing everywhere"
#: half of the parity contract.
_COMMON_DEFAULTS: Dict[str, str] = {
    "erasure_prob": "0.0",
    "faults": "None",
    "start_offsets": "None",
    "trace": "None",
}

#: Cross-layer functions whose call sites are validated keyword-by-
#: keyword (C602): function name -> defining module.
CONTRACT_FUNCTIONS: Dict[str, str] = {
    "run_synchronous": "sim.runner",
    "run_asynchronous": "sim.runner",
    "run_experiment_trial": "sim.runner",
    "run_experiment_trials_batched": "sim.runner",
    "replay_trial": "sim.runner",
    "run_trials": "sim.runner",
    "make_clocks": "sim.runner",
    "random_start_offsets": "sim.runner",
    "run_experiment_grid_batched": "sim.runner",
    "grid_batchable": "sim.runner",
    "run_spec_trials": "sim.parallel",
    "run_grid_spec_trials": "sim.parallel",
    "run_batch": "sim.batch",
    "run_supervised_trials": "resilience.supervisor",
    "compile_plan": "faults.runtime",
    "derive_trial_seed": "sim.rng",
    "campaign_specs": "service.campaigns",
    "execute_job": "service.worker",
    "run_worker": "resilience.distributed",
}

#: Typed trial errors whose construction sites must carry replay
#: coordinates (C604).
_REPLAY_ERRORS = frozenset(
    {"TrialExecutionError", "TrialTimeoutError", "TrialQuarantinedError"}
)
_REPLAY_FIELDS = ("experiment", "trial_indices", "base_seed")


@dataclass
class _Signature:
    """A callable's keyword surface, extracted from its AST."""

    params: Set[str]
    defaults: Dict[str, str]
    has_kwargs: bool
    node: ast.AST


def _signature_of(fn: ast.AST) -> Optional[_Signature]:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = fn.args
    ordered = list(args.posonlyargs) + list(args.args)
    params = {a.arg for a in ordered + list(args.kwonlyargs)}
    params.discard("self")
    params.discard("cls")
    defaults: Dict[str, str] = {}
    positional_defaults = list(args.defaults)
    for arg, default in zip(
        ordered[len(ordered) - len(positional_defaults) :], positional_defaults
    ):
        defaults[arg.arg] = ast.unparse(default)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            defaults[arg.arg] = ast.unparse(kw_default)
    return _Signature(
        params=params,
        defaults=defaults,
        has_kwargs=args.kwarg is not None,
        node=fn,
    )


def _find_def(
    ctx: ModuleContext, name: str
) -> Optional[ast.AST]:
    for node in ctx.tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name == name
        ):
            return node
    return None


def _class_init_signature(cls: ast.ClassDef) -> Optional[_Signature]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "__init__":
                return _signature_of(node)
    return None


def _contract_signatures(
    project: ProjectContext,
) -> Dict[str, _Signature]:
    """Resolved signatures for every contract function and engine class.

    Keyed by the bare callable name; targets whose module is absent
    from the audited tree are simply not present in the map.
    """
    signatures: Dict[str, _Signature] = {}
    for name, module in CONTRACT_FUNCTIONS.items():
        ctx = project.get(module)
        if ctx is None:
            continue
        node = _find_def(ctx, name)
        sig = _signature_of(node) if node is not None else None
        if sig is not None:
            signatures[name] = sig
    for module, (class_name, _) in ENGINE_CONTRACT.items():
        ctx = project.get(module)
        if ctx is None:
            continue
        node = _find_def(ctx, class_name)
        if isinstance(node, ast.ClassDef):
            sig = _class_init_signature(node)
            if sig is not None:
                signatures[class_name] = sig
    return signatures


class EngineSurfaceParity(AuditRule):
    rule_id = "C601"
    title = "engine constructor keyword surfaces must stay in lockstep"
    rationale = (
        "run_synchronous / run_experiment_trials_batched forward the "
        "same keywords to whichever engine the campaign selects; an "
        "engine that renames or drops one breaks the parity contract "
        "for exactly the configurations tests do not cover."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        relevant = [m for m in ENGINE_CONTRACT if project.get(m) is not None]
        if not relevant:
            return
        for module in relevant:
            class_name, required = ENGINE_CONTRACT[module]
            ctx = project.get(module)
            assert ctx is not None
            node = _find_def(ctx, class_name)
            if not isinstance(node, ast.ClassDef):
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"engine class {class_name} is missing from "
                    f"{module} (declared in ENGINE_CONTRACT)",
                )
                continue
            sig = _class_init_signature(node)
            if sig is None:
                yield self.finding(
                    ctx,
                    node,
                    f"{class_name} defines no __init__ to check against "
                    "the engine keyword contract",
                )
                continue
            for param in sorted(required - sig.params):
                yield self.finding(
                    ctx,
                    sig.node,
                    f"{class_name}.__init__ is missing contract keyword "
                    f"{param!r} (engines must share this surface; see "
                    "ENGINE_CONTRACT)",
                )
            for param, expected in sorted(_COMMON_DEFAULTS.items()):
                if param not in sig.params or param not in sig.defaults:
                    continue
                if sig.defaults[param] != expected:
                    yield self.finding(
                        ctx,
                        sig.node,
                        f"{class_name}.__init__ default for {param!r} is "
                        f"{sig.defaults[param]}, but the engine contract "
                        f"pins {expected} (absence must mean the same "
                        "thing on every engine)",
                    )


class CallKeywordValidity(AuditRule):
    rule_id = "C602"
    title = "call sites may only use keywords the contract callable declares"
    rationale = (
        "A misspelled or removed keyword in runner/batch/CLI plumbing "
        "surfaces as a runtime TypeError three layers deep (or is "
        "swallowed by **kwargs); checking call sites against the "
        "definition fails at the drift line instead."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        signatures = _contract_signatures(project)
        if not signatures:
            return
        for ctx in project.all_modules():
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                sig = signatures.get(leaf)
                if sig is None or sig.has_kwargs:
                    continue
                for kw in node.keywords:
                    if kw.arg is None:  # **mapping: contents unknowable
                        continue
                    if kw.arg not in sig.params:
                        known = ", ".join(sorted(sig.params))
                        yield self.finding(
                            ctx,
                            node,
                            f"{leaf}() has no keyword {kw.arg!r} "
                            f"(declared: {known})",
                        )


def _batchable_params(
    ctx: ModuleContext,
) -> Optional[Tuple[List[str], ast.AST]]:
    """``_BATCHABLE_PARAMS`` string entries + the assignment node."""
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "_BATCHABLE_PARAMS" in targets:
                keys = [
                    sub.value
                    for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Constant)
                    and isinstance(sub.value, str)
                ]
                return keys, node
    return None


class BatchableParamsSubset(AuditRule):
    rule_id = "C603"
    title = "_BATCHABLE_PARAMS must be a subset of run_synchronous keywords"
    rationale = (
        "run_experiment_trials_batched promises that any runner_params "
        "set drawn from _BATCHABLE_PARAMS executes identically on the "
        "batched and serial paths; a key run_synchronous does not "
        "accept makes the serial side raise while the batched side "
        "silently ignores it."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.get("sim.runner")
        if ctx is None:
            return
        found = _batchable_params(ctx)
        if found is None:
            yield self.finding(
                ctx,
                ctx.tree,
                "_BATCHABLE_PARAMS is missing from sim.runner (the "
                "batched-engine eligibility contract)",
            )
            return
        keys, batchable_node = found
        run_sync = _find_def(ctx, "run_synchronous")
        sig = _signature_of(run_sync) if run_sync is not None else None
        if sig is None:
            yield self.finding(
                ctx, ctx.tree, "run_synchronous is missing from sim.runner"
            )
            return
        for key in sorted(keys):
            if key not in sig.params:
                yield self.finding(
                    ctx,
                    batchable_node,
                    f"_BATCHABLE_PARAMS entry {key!r} is not a keyword of "
                    "run_synchronous; the serial fallback would raise "
                    "where the batched path succeeds",
                )


#: Batchable runner-params the grid dispatcher resolves *above* the
#: cell level: schedule construction (``delta_est``), the shared
#: stopping condition (``max_slots``, ``stop_on_full_coverage``) and
#: engine selection (``engine``). Everything else must travel inside a
#: :class:`~repro.sim.batched.GridCell`.
_GRID_DISPATCH_PARAMS = frozenset(
    {"delta_est", "engine", "max_slots", "stop_on_full_coverage"}
)


class GridCellCoverage(AuditRule):
    rule_id = "C606"
    title = "_BATCHABLE_PARAMS must map onto GridCell fields or dispatch params"
    rationale = (
        "run_experiment_grid_batched fuses spec points by translating "
        "each entry's runner_params into a GridCell; a batchable "
        "parameter with no GridCell field and no dispatch-level "
        "handling is silently dropped when spec points fuse while the "
        "per-spec path honors it — a byte-identity break the "
        "differential tests only catch for parameters they vary."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        runner = project.get("sim.runner")
        batched = project.get("sim.batched")
        if runner is None or batched is None:
            return
        found = _batchable_params(runner)
        if found is None:
            return  # C603 already reports the missing contract
        keys, _ = found
        cell = _find_def(batched, "GridCell")
        if not isinstance(cell, ast.ClassDef):
            yield self.finding(
                batched,
                batched.tree,
                "GridCell is missing from sim.batched (the grid batch "
                "cell contract)",
            )
            return
        fields = {
            stmt.target.id
            for stmt in cell.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        }
        for key in sorted(set(keys) - _GRID_DISPATCH_PARAMS):
            if key not in fields:
                yield self.finding(
                    batched,
                    cell,
                    f"_BATCHABLE_PARAMS entry {key!r} is neither a "
                    "GridCell field nor a declared dispatch-level "
                    "parameter (_GRID_DISPATCH_PARAMS); the grid path "
                    "would silently drop it",
                )


class ReplayCoordinateContract(AuditRule):
    rule_id = "C604"
    title = "typed trial errors must carry replay coordinates"
    rationale = (
        "The replay contract — every campaign failure names "
        "derive_trial_seed(base_seed, trial) — only holds if the typed "
        "errors keep their coordinate fields and every raise site "
        "fills them in."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        exc_ctx = project.get("exceptions")
        if exc_ctx is not None:
            node = _find_def(exc_ctx, "TrialExecutionError")
            if not isinstance(node, ast.ClassDef):
                yield self.finding(
                    exc_ctx,
                    exc_ctx.tree,
                    "TrialExecutionError is missing from repro.exceptions",
                )
            else:
                sig = _class_init_signature(node)
                if sig is None:
                    yield self.finding(
                        exc_ctx,
                        node,
                        "TrialExecutionError defines no __init__; replay "
                        f"coordinates {_REPLAY_FIELDS} must be constructor "
                        "fields",
                    )
                else:
                    for fld in _REPLAY_FIELDS:
                        if fld not in sig.params:
                            yield self.finding(
                                exc_ctx,
                                sig.node,
                                "TrialExecutionError.__init__ lost replay "
                                f"coordinate field {fld!r}",
                            )
        else:
            return  # scratch tree without the package: nothing to check
        for ctx in project.all_modules():
            if ctx.module == "exceptions":
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.rsplit(".", 1)[-1] not in _REPLAY_ERRORS:
                    continue
                given = {kw.arg for kw in node.keywords}
                if None in given:
                    continue  # **mapping may carry the coordinates
                missing = [
                    fld
                    for fld in ("trial_indices", "base_seed")
                    if fld not in given
                ]
                if missing:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name.rsplit('.', 1)[-1]} constructed without "
                        f"{', '.join(missing)}; failures must carry "
                        "replayable coordinates",
                    )


class CliFlagPlumbing(AuditRule):
    rule_id = "C605"
    title = "every CLI flag must be plumbed to a consumer"
    rationale = (
        "A flag that parses but is never read silently ignores the "
        "user's configuration — the campaign runs, just not the one "
        "that was asked for."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.get("cli")
        if ctx is None:
            return
        used_attrs = {
            node.attr
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Attribute)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                not isinstance(node.func, ast.Attribute)
                or node.func.attr != "add_argument"
            ):
                continue
            dest: Optional[str] = None
            for kw in node.keywords:
                if (
                    kw.arg == "dest"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    dest = kw.value.value
            if dest is None and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    dest = first.value.lstrip("-").replace("-", "_")
            if dest is None:
                continue
            if dest not in used_attrs:
                yield self.finding(
                    ctx,
                    node,
                    f"CLI flag with dest {dest!r} is parsed but "
                    f"args.{dest} is never read; plumb it or remove it",
                )
