"""S-series audit rules: whole-program RNG stream provenance.

Every guarantee the repo sells — worker-count-invariant archives,
fault-stream invariance, batch-size-invariant vectorized output,
recovery-never-changes-results — assumes that the named streams handed
out by :class:`repro.sim.rng.RngFactory` never collide: two components
drawing from the *same* stream interleave their draws, so any change in
call order silently reshuffles both. The factory derives streams from a
stable hash of the key string, which makes the key space a global,
whole-program namespace — exactly what a per-file linter cannot check.

This analyzer walks every module, resolves each ``stream(key)`` /
``node_stream(node_id)`` / ``fork(label)`` call site into a **key
template** (constant keys stay themselves; f-string keys become
templates with ``{}`` placeholders), and collects them into a
:class:`StreamRegistry`. Rules:

* **S401** — one key template used from more than one module. Sharing
  a stream by name is the documented :class:`RngFactory` idiom *within*
  a component, but across modules it is either a deliberate parity
  contract (declare it in :data:`SHARED_STREAM_KEYS` with its reason)
  or an accidental collision.
* **S402** — a dynamic key with no stable template (``stream(name)``
  where ``name`` is a variable, call result, …). The analyzer cannot
  prove such a key disjoint from any other; write the key as an
  f-string over stable parts instead.
* **S403** — two *different* key templates that can produce the same
  string (``stream(f"node-{i}")`` in new code unifies with the
  ``node-{}`` family owned by ``node_stream``). Detected by wildcard
  template unification.

``fork(label)`` labels live in their own namespace — the factory mixes
a sentinel into the spawn key — so fork labels only collide with other
fork labels.

The registry also serializes to the committed snapshot checked by
``m2hew audit`` (see :func:`repro.devtools.audit.registry_drift`), so
every new stream key lands in review as a readable JSON diff.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..audit import AuditRule, ProjectContext
from ..lint import Finding, ModuleContext

__all__ = [
    "SHARED_STREAM_KEYS",
    "StreamRegistry",
    "StreamSite",
    "StreamKeyCollision",
    "DynamicStreamKey",
    "UnifiableStreamTemplates",
    "build_registry",
    "extract_sites",
    "templates_unify",
]

#: Key templates that are *deliberately* reachable from more than one
#: module, with the contract each sharing implements. Everything here is
#: reviewed API surface: removing or renaming one of these keys changes
#: archived bytes everywhere.
SHARED_STREAM_KEYS: Dict[str, str] = {
    "erasure": (
        "engine erasure stream: one engine per factory per run, and "
        "BernoulliLoss must draw from it at the legacy code points on "
        "every engine (PR 3 equivalence contract)"
    ),
    "fast-engine": (
        "serial/batched parity: BatchedSlottedSimulator must consume "
        "the FastSlottedSimulator stream call-for-call so batched "
        "output is byte-identical per trial (PR 4 contract)"
    ),
    "environment": (
        "environment realization (clocks, start times): one runner "
        "entry point per run; run_asynchronous and run_terminating_sync "
        "use the same key so environment draws replay identically"
    ),
    "node-{}": (
        "per-node protocol stream, always obtained through the "
        "RngFactory.node_stream accessor; engines never share a factory "
        "within a run"
    ),
}

#: Methods whose call sites the analyzer records, with the namespace
#: each key lives in (fork labels are salted with a sentinel spawn-key
#: component, so they cannot collide with stream keys).
_CALL_NAMESPACES = {"stream": "stream", "node_stream": "stream", "fork": "fork"}

#: The module owning the accessor implementations; its internal
#: ``self.stream(f"node-{node_id}")`` is the definition of the
#: ``node-{}`` family, not a user call site.
_FACTORY_MODULE = "sim.rng"


@dataclass(frozen=True)
class StreamSite:
    """One resolved ``stream``/``node_stream``/``fork`` call site."""

    module: str
    line: int
    col: int
    call: str
    namespace: str
    #: ``"constant"``, ``"template"`` or ``"dynamic"``.
    kind: str
    #: Key template with ``{}`` placeholders; ``None`` for dynamic keys.
    template: Optional[str]


def _resolve_key_tokens(node: ast.expr) -> Optional[List[Optional[str]]]:
    """Key expression -> literal/placeholder tokens, ``None`` if dynamic.

    Tokens are literal strings or ``None`` (a ``{}`` placeholder).
    Handles constants, f-strings and ``+``-concatenation of resolvable
    parts; anything else (bare names, call results) is dynamic.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return [node.value]
        return None
    if isinstance(node, ast.JoinedStr):
        tokens: List[Optional[str]] = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                tokens.append(part.value)
            else:
                tokens.append(None)
        return tokens
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _resolve_key_tokens(node.left)
        right = _resolve_key_tokens(node.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _template_text(tokens: List[Optional[str]]) -> str:
    return "".join("{}" if tok is None else tok for tok in tokens)


def _key_argument(call: ast.Call, keyword_name: str) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == keyword_name:
            return kw.value
    return None


def _module_label(ctx: ModuleContext) -> str:
    return ctx.module if ctx.module is not None else str(ctx.path)


def extract_sites(project: ProjectContext) -> List[StreamSite]:
    """Every stream/fork call site in the project, in stable order."""
    sites: List[StreamSite] = []
    for ctx in project.all_modules():
        if ctx.module == _FACTORY_MODULE:
            continue
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            call = func.attr
            namespace = _CALL_NAMESPACES.get(call)
            if namespace is None:
                continue
            if call == "node_stream":
                kind, template = "template", "node-{}"
            else:
                key_node = _key_argument(
                    node, "label" if call == "fork" else "key"
                )
                tokens = (
                    None if key_node is None else _resolve_key_tokens(key_node)
                )
                if tokens is None:
                    kind, template = "dynamic", None
                else:
                    kind = (
                        "constant"
                        if all(tok is not None for tok in tokens)
                        else "template"
                    )
                    template = _template_text(tokens)
            sites.append(
                StreamSite(
                    module=_module_label(ctx),
                    line=node.lineno,
                    col=node.col_offset,
                    call=call,
                    namespace=namespace,
                    kind=kind,
                    template=template,
                )
            )
    return sites


def _tokenize_template(template: str) -> List[Optional[str]]:
    """Template text -> per-character tokens (``None`` = ``{}`` wildcard)."""
    tokens: List[Optional[str]] = []
    i = 0
    while i < len(template):
        if template.startswith("{}", i):
            tokens.append(None)
            i += 2
        else:
            tokens.append(template[i])
            i += 1
    return tokens


def templates_unify(a: str, b: str) -> bool:
    """Whether two key templates can produce the same key string.

    ``{}`` placeholders match any substring (including the empty one) —
    the conservative assumption, since nothing constrains what callers
    format into a key. Standard two-pattern intersection DP.
    """
    ta, tb = _tokenize_template(a), _tokenize_template(b)
    rows, cols = len(ta) + 1, len(tb) + 1
    dp = [[False] * cols for _ in range(rows)]
    dp[0][0] = True
    for i in range(rows):
        for j in range(cols):
            if i == 0 and j == 0:
                continue
            ok = False
            if i > 0 and ta[i - 1] is None:
                ok = dp[i - 1][j] or (j > 0 and dp[i][j - 1])
            if not ok and j > 0 and tb[j - 1] is None:
                ok = dp[i][j - 1] or (i > 0 and dp[i - 1][j])
            if (
                not ok
                and i > 0
                and j > 0
                and ta[i - 1] is not None
                and ta[i - 1] == tb[j - 1]
            ):
                ok = dp[i - 1][j - 1]
            dp[i][j] = ok
    return dp[rows - 1][cols - 1]


@dataclass
class StreamRegistry:
    """The project's stream-key map: entries grouped by (namespace,
    template, call), plus the dynamic sites no template could be
    derived for."""

    #: ``(namespace, template, call)`` -> sites using that template.
    entries: Dict[Tuple[str, str, str], List[StreamSite]]
    dynamic: List[StreamSite]

    def as_dict(self) -> Dict[str, object]:
        """Snapshot form: stable across edits that only move lines."""
        namespaces: Dict[str, List[Dict[str, object]]] = {}
        for (namespace, template, call), sites in sorted(self.entries.items()):
            namespaces.setdefault(namespace, []).append(
                {
                    "template": template,
                    "kind": sites[0].kind,
                    "call": call,
                    "modules": sorted({s.module for s in sites}),
                    "shared": SHARED_STREAM_KEYS.get(template),
                }
            )
        return {
            "schema_version": 1,
            "namespaces": namespaces,
            "dynamic": sorted({s.module for s in self.dynamic}),
        }


def build_registry(project: ProjectContext) -> StreamRegistry:
    """Collect every stream/fork call site into the project registry."""
    entries: Dict[Tuple[str, str, str], List[StreamSite]] = {}
    dynamic: List[StreamSite] = []
    for site in extract_sites(project):
        if site.template is None:
            dynamic.append(site)
        else:
            key = (site.namespace, site.template, site.call)
            entries.setdefault(key, []).append(site)
    return StreamRegistry(entries=entries, dynamic=dynamic)


def _ctx_for(project: ProjectContext, site: StreamSite) -> ModuleContext:
    ctx = project.get(site.module)
    if ctx is not None:
        return ctx
    for extra in project.extra:
        if str(extra.path) == site.module:
            return extra
    raise KeyError(site.module)  # pragma: no cover - sites come from ctxs


def _site_finding(
    rule: AuditRule, project: ProjectContext, site: StreamSite, message: str
) -> Finding:
    ctx = _ctx_for(project, site)
    return Finding(
        rule_id=rule.rule_id,
        path=str(ctx.path),
        line=site.line,
        col=site.col,
        message=message,
    )


class StreamKeyCollision(AuditRule):
    rule_id = "S401"
    title = "one stream key template reachable from several modules"
    rationale = (
        "Two modules drawing from one named stream interleave their "
        "draws; any call-order change reshuffles both. Cross-module "
        "sharing must be a declared contract (SHARED_STREAM_KEYS) or a "
        "renamed key."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        registry = build_registry(project)
        for (namespace, template, call), sites in sorted(
            registry.entries.items()
        ):
            if template in SHARED_STREAM_KEYS:
                continue
            modules = sorted({s.module for s in sites})
            if len(modules) < 2:
                continue
            others = ", ".join(modules)
            for site in sites:
                yield _site_finding(
                    self,
                    project,
                    site,
                    f"{namespace} key {template!r} is used from multiple "
                    f"modules ({others}); rename the key per component or "
                    "declare the sharing contract in "
                    "repro.devtools.rules.streams.SHARED_STREAM_KEYS",
                )


class DynamicStreamKey(AuditRule):
    rule_id = "S402"
    title = "stream key without a stable template"
    rationale = (
        "A key built from a variable or call result cannot be proven "
        "disjoint from any other stream; the registry cannot even "
        "record it. Write keys as f-strings over stable literal parts."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        registry = build_registry(project)
        for site in registry.dynamic:
            yield _site_finding(
                self,
                project,
                site,
                f"{site.call}() key has no stable template (not a string "
                "literal, f-string or concatenation of them); use an "
                'f-string like f"component-{index}" so provenance is '
                "analyzable",
            )


class UnifiableStreamTemplates(AuditRule):
    rule_id = "S403"
    title = "two distinct stream key templates can produce the same key"
    rationale = (
        "RngFactory derives a stream from the key string alone: if two "
        "templates can format to the same string, the components they "
        "belong to can silently share (and interleave) one stream."
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        registry = build_registry(project)
        keys = sorted(registry.entries)
        for i, key_a in enumerate(keys):
            namespace_a, template_a, call_a = key_a
            for key_b in keys[i + 1 :]:
                namespace_b, template_b, call_b = key_b
                if namespace_a != namespace_b:
                    continue
                if not templates_unify(template_a, template_b):
                    continue
                for site in (
                    registry.entries[key_a] + registry.entries[key_b]
                ):
                    yield _site_finding(
                        self,
                        project,
                        site,
                        f"{namespace_a} key templates {template_a!r} "
                        f"(via {call_a}) and {template_b!r} (via {call_b}) "
                        "can produce the same key string; disjoint "
                        "components need non-unifiable key prefixes",
                    )
