"""D-series rules: every simulation result must be replayable from a seed.

These rules apply to the simulation-critical packages
(:data:`repro.devtools.lint.SIM_CRITICAL_PACKAGES`): any randomness or
time source that bypasses :mod:`repro.sim.rng` silently invalidates the
slot-bound experiments in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..lint import AnyFunctionDef, Finding, ModuleContext, Rule, dotted_name

__all__ = [
    "DRAW_METHODS",
    "BannedRandomImport",
    "BannedDefaultRng",
    "LegacyGlobalNumpyRandom",
    "WallClockInSimulation",
    "RandomnessWithoutRngParameter",
    "DocstringExampleDrift",
    "DensePerSlotAllocation",
]

#: ``np.random.Generator`` drawing methods — seeing one of these called
#: means the enclosing code consumes randomness.
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "beta",
        "gamma",
        "bytes",
    }
)

#: Attributes of ``np.random`` that do *not* consume the legacy global
#: RNG state (types and constructors are fine; module-level draws are not).
_NP_RANDOM_TYPES = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "RandomState",
        "default_rng",
    }
)

#: Parameter names that mark a function as seed-aware.
_RNG_PARAM_NAMES = frozenset(
    {"rng", "seed", "base_seed", "generator", "factory", "rng_factory", "seeds"}
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


class BannedRandomImport(Rule):
    rule_id = "D101"
    title = "stdlib `random` module banned in simulation packages"
    rationale = (
        "The stdlib `random` module carries hidden global state; trials "
        "seeded through repro.sim.rng cannot replay draws made through it."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "import of stdlib `random`; draw from an "
                            "injected np.random.Generator "
                            "(repro.sim.rng) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "import from stdlib `random`; draw from an injected "
                        "np.random.Generator (repro.sim.rng) instead",
                    )


class BannedDefaultRng(Rule):
    rule_id = "D102"
    title = "`np.random.default_rng` banned in simulation packages"
    rationale = (
        "Generators must derive from the run's SeedSequence tree via "
        "repro.sim.rng so per-node streams stay independent and replayable; "
        "ad-hoc default_rng() calls fork untracked entropy."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.endswith("random.default_rng") or name == "default_rng":
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() bypasses the seed tree; use "
                    "repro.sim.rng.make_generator / RngFactory",
                )


class LegacyGlobalNumpyRandom(Rule):
    rule_id = "D103"
    title = "legacy global `np.random.<dist>` state banned"
    rationale = (
        "Module-level np.random draws share one hidden global stream: any "
        "import-order change reshuffles every trial."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or ".random." not in f".{name}":
                continue
            parts = name.split(".")
            if len(parts) < 3 or parts[-2] != "random":
                continue
            if parts[0] not in ("np", "numpy"):
                continue
            if parts[-1] in _NP_RANDOM_TYPES:
                continue
            yield self.finding(
                ctx,
                node,
                f"legacy global-state call np.random.{parts[-1]}(); draw "
                "from an injected np.random.Generator instead",
            )


class WallClockInSimulation(Rule):
    rule_id = "D104"
    title = "wall-clock reads banned in simulation packages"
    rationale = (
        "Simulated time comes from repro.sim.clock; reading the host clock "
        "makes slot counts and frame timings machine-dependent."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {name}(); simulation time must come "
                    "from the engine's clock model",
                )


def _function_params(node: AnyFunctionDef) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _draws_randomness(node: ast.AST) -> Optional[ast.AST]:
    """First node inside ``node`` that consumes randomness, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        name = dotted_name(sub.func)
        if name is None:
            continue
        leaf = name.rsplit(".", 1)[-1]
        if leaf in DRAW_METHODS and "." in name:
            return sub
        if leaf in ("make_generator", "spawn_generators", "RngFactory"):
            return sub
    return None


class RandomnessWithoutRngParameter(Rule):
    rule_id = "D105"
    title = "public functions that draw randomness must accept rng/seed"
    rationale = (
        "A public function drawing randomness without an rng/seed parameter "
        "has no replayable entropy source; callers cannot pin its draws to "
        "the experiment's seed tree."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = _function_params(node)
            if any(p in _RNG_PARAM_NAMES for p in params):
                continue
            if params[:1] in (["self"], ["cls"]):
                continue  # methods get their stream at construction time
            culprit = _draws_randomness(node)
            if culprit is not None:
                yield self.finding(
                    ctx,
                    culprit,
                    f"public function `{node.name}` draws randomness but "
                    "accepts no rng/seed parameter",
                )


#: numpy array constructors whose first argument is a shape.
_DENSE_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})


def _axis_refs(node: ast.AST) -> Set[str]:
    """Dotted names referenced by one shape axis (``self``/``cls`` aside)."""
    refs: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = dotted_name(sub)
            if name is not None and name not in ("self", "cls"):
                refs.add(name)
    return refs


class DensePerSlotAllocation(Rule):
    rule_id = "D107"
    title = "dense O(N²) allocation inside a per-slot hot path"
    rationale = (
        "A `_run_slot` body executes once per simulated slot; allocating a "
        "buffer whose shape repeats a size variable (N×N, C×N×N, …) there "
        "makes every slot cost O(N²) in allocator traffic regardless of how "
        "few nodes act. Hoist the buffer to __init__ or resolve reception "
        "sparsely (repro.sim.fast_slotted.SparseReception)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "_run_slot" not in fn.name:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if parts[0] not in ("np", "numpy"):
                    continue
                if parts[-1] not in _DENSE_ALLOCATORS or not node.args:
                    continue
                shape = node.args[0]
                if not isinstance(shape, ast.Tuple) or len(shape.elts) < 2:
                    continue
                axes = [_axis_refs(elt) for elt in shape.elts]
                repeated = {
                    ref
                    for i, refs in enumerate(axes)
                    for ref in refs
                    if any(ref in other for other in axes[i + 1 :])
                }
                if repeated:
                    dims = " and ".join(sorted(repeated))
                    yield self.finding(
                        ctx,
                        node,
                        f"np.{parts[-1]} shape repeats `{dims}` — an O(N²) "
                        f"allocation every slot in `{fn.name}`; preallocate "
                        "in __init__ or use the sparse reception kernel",
                    )


class DocstringExampleDrift(Rule):
    rule_id = "D106"
    title = "docstring examples must follow the determinism discipline"
    rationale = (
        "Quickstart snippets are the first thing users copy; an example "
        "built on np.random.default_rng or stdlib random teaches the exact "
        "pattern the D-series bans."
    )

    _BANNED_SNIPPETS = (
        "np.random.default_rng(",
        "numpy.random.default_rng(",
        "import random\n",
        "from random import",
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_repro:
            return
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            doc_node = None
            if (
                node.body
                and isinstance(node.body[0], ast.Expr)
                and isinstance(node.body[0].value, ast.Constant)
                and isinstance(node.body[0].value.value, str)
            ):
                doc_node = node.body[0]
            if doc_node is None or doc_node.lineno in seen:
                continue
            seen.add(doc_node.lineno)
            text = doc_node.value.value  # type: ignore[union-attr]
            for banned in self._BANNED_SNIPPETS:
                if banned in text:
                    yield self.finding(
                        ctx,
                        doc_node,
                        f"docstring example uses `{banned.strip()}`; route "
                        "examples through repro.sim.rng.make_generator / "
                        "RngFactory",
                    )
                    break
