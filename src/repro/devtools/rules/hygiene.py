"""Q-series rules: general hygiene with determinism side-effects.

These are classic Python pitfalls, kept in-house (rather than deferring
to an external linter) because each one has bitten reproducibility
efforts specifically: mutable defaults leak state across trials, bare
``except:`` swallows the model-violation exceptions the engines raise,
and an incomplete ``__all__`` makes star-imports — and therefore the
documented public surface — drift from reality.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..lint import Finding, ModuleContext, Rule, dotted_name

__all__ = [
    "MutableDefaultArgument",
    "BareExcept",
    "MissingAllExport",
    "CauseDroppingBroadExcept",
]

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


class MutableDefaultArgument(Rule):
    rule_id = "Q301"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is created once per process: state from trial k "
        "leaks into trial k+1, which is exactly the cross-trial coupling "
        "replayable experiments must exclude."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in `{name}`; default to "
                        "None and create the container in the body",
                    )


class BareExcept(Rule):
    rule_id = "Q302"
    title = "no bare `except:` clauses"
    rationale = (
        "Bare except swallows SimulationError/NetworkModelError — the "
        "exceptions that signal a model-invariant breach — and also "
        "KeyboardInterrupt/SystemExit. Catch ReproError or a concrete type."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:`; name the exception type (ReproError "
                    "for library failures)",
                )


def _all_entries(tree: ast.Module) -> Optional[Set[str]]:
    """Names listed in ``__all__``, following append/extend/+=; ``None``
    when the module defines no ``__all__`` at all."""
    entries: Optional[Set[str]] = None

    def literal_names(node: ast.AST) -> List[str]:
        if isinstance(node, (ast.List, ast.Tuple)):
            return [
                elt.value
                for elt in node.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
        return []

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    entries = set(literal_names(node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                entries = (entries or set()) | set(literal_names(node.value))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "__all__"
            ):
                if func.attr == "append" and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        entries = (entries or set()) | {arg.value}
                elif func.attr == "extend" and node.args:
                    entries = (entries or set()) | set(literal_names(node.args[0]))
    return entries


def _public_definitions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """(name, node) for every public symbol *defined* at module top level.

    Imports are excluded: re-exports are a deliberate act already covered
    by listing the name in ``__all__`` where intended.
    """
    defs: List[Tuple[str, ast.AST]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                defs.append((node.name, node))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                    and target.id != "__all__"
                ):
                    defs.append((target.id, node))
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                defs.append((target.id, node))
    return defs


class MissingAllExport(Rule):
    rule_id = "Q303"
    title = "public symbols must appear in `__all__`"
    rationale = (
        "The documented API surface is `__all__`; a public symbol missing "
        "from it is invisible to star-imports and to the docs build, so the "
        "API drifts silently."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_repro:
            return  # tests and scripts need no __all__
        public = _public_definitions(ctx.tree)
        entries = _all_entries(ctx.tree)
        if entries is None:
            if public:
                yield self.finding(
                    ctx,
                    ctx.tree.body[0],
                    f"module defines {len(public)} public symbol(s) but no "
                    "__all__",
                )
            return
        for name, node in public:
            if name not in entries:
                yield self.finding(
                    ctx,
                    node,
                    f"public symbol `{name}` missing from __all__",
                )


_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _is_broad_type(node: Optional[ast.AST]) -> bool:
    """Whether an except clause's type catches Exception/BaseException."""
    if node is None:
        return True  # bare except (Q302's finding, but also broad)
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(elt) for elt in node.elts)
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] in _BROAD_TYPES


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _handler_raises(handler: ast.ExceptHandler) -> Iterator[ast.Raise]:
    """`raise` statements belonging to this handler's own body.

    Nested except handlers and nested function/class definitions own
    their raises; they are analyzed (or exempted) on their own terms.
    """
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.ExceptHandler, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            continue
        if isinstance(node, ast.Raise):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class CauseDroppingBroadExcept(Rule):
    rule_id = "Q304"
    title = "broad excepts must not drop the original traceback"
    rationale = (
        "In sim-critical code an `except Exception` that raises a new "
        "exception without chaining (`raise New(...) from exc`, or passing "
        "`exc` into the wrapper) destroys the traceback that locates the "
        "failing trial — the one artifact the replay contract depends on. "
        "It also swallows typed errors (TrialExecutionError et al.) that "
        "carry replay coordinates; re-raise those untouched first."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.sim_critical:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_type(node.type):
                continue
            for raised in _handler_raises(node):
                if raised.exc is None:
                    continue  # bare re-raise keeps the traceback
                if raised.cause is not None:
                    continue  # explicit `from ...`
                if node.name is not None and node.name in _names_in(raised.exc):
                    continue  # caught exception handed to the wrapper
                yield self.finding(
                    ctx,
                    raised,
                    "broad except replaces the exception without chaining; "
                    "use `raise ... from "
                    f"{node.name or '<caught exception>'}` or pass it to "
                    "the wrapper so __cause__ survives",
                )
