"""Rule registry for the repro linter.

Rules live in three modules — :mod:`determinism` (D-series),
:mod:`model` (M-series), :mod:`hygiene` (Q-series) — and register here.
``docs/static_analysis.md`` documents every ID.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..lint import Rule
from . import determinism, hygiene, model

__all__ = ["all_rules", "rules_by_id", "select_rules"]

_RULE_CLASSES = (
    determinism.BannedRandomImport,
    determinism.BannedDefaultRng,
    determinism.LegacyGlobalNumpyRandom,
    determinism.WallClockInSimulation,
    determinism.RandomnessWithoutRngParameter,
    determinism.DocstringExampleDrift,
    determinism.DensePerSlotAllocation,
    model.TableMutationOutsideHook,
    model.LiteralTransmitProbability,
    model.ProtocolOwnRandomSource,
    hygiene.MutableDefaultArgument,
    hygiene.BareExcept,
    hygiene.MissingAllExport,
    hygiene.CauseDroppingBroadExcept,
)


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, in ID order."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.rule_id)


def rules_by_id() -> Dict[str, Rule]:
    """Map rule ID -> rule instance."""
    return {rule.rule_id: rule for rule in all_rules()}


def select_rules(ids: Iterable[str]) -> List[Rule]:
    """Rules for the given IDs; raises ``KeyError`` on an unknown ID."""
    registry = rules_by_id()
    selected = []
    for rule_id in ids:
        key = rule_id.strip().upper()
        if key not in registry:
            known = ", ".join(sorted(registry))
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        selected.append(registry[key])
    return selected
