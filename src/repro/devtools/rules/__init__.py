"""Rule registries for the repro static-analysis tools.

Per-file lint rules (``m2hew lint``) live in :mod:`determinism`
(D-series), :mod:`model` (M-series) and :mod:`hygiene` (Q-series).
Whole-program audit rules (``m2hew audit``) live in :mod:`streams`
(S-series), :mod:`parallel_order` (P-series) and :mod:`contracts`
(C-series). ``docs/static_analysis.md`` documents every ID.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..audit import AuditRule
from ..lint import Rule
from . import contracts, determinism, hygiene, model, parallel_order, streams

__all__ = [
    "all_audit_rules",
    "all_rules",
    "audit_rules_by_id",
    "rules_by_id",
    "select_audit_rules",
    "select_rules",
]

_RULE_CLASSES = (
    determinism.BannedRandomImport,
    determinism.BannedDefaultRng,
    determinism.LegacyGlobalNumpyRandom,
    determinism.WallClockInSimulation,
    determinism.RandomnessWithoutRngParameter,
    determinism.DocstringExampleDrift,
    determinism.DensePerSlotAllocation,
    model.TableMutationOutsideHook,
    model.LiteralTransmitProbability,
    model.ProtocolOwnRandomSource,
    hygiene.MutableDefaultArgument,
    hygiene.BareExcept,
    hygiene.MissingAllExport,
    hygiene.CauseDroppingBroadExcept,
)

_AUDIT_RULE_CLASSES = (
    streams.StreamKeyCollision,
    streams.DynamicStreamKey,
    streams.UnifiableStreamTemplates,
    parallel_order.SetIterationOrder,
    parallel_order.UnsortedFilesystemIteration,
    parallel_order.CompletionOrderConsumption,
    parallel_order.IdentityOrderSort,
    parallel_order.WallClockSeed,
    contracts.EngineSurfaceParity,
    contracts.CallKeywordValidity,
    contracts.BatchableParamsSubset,
    contracts.GridCellCoverage,
    contracts.ReplayCoordinateContract,
    contracts.CliFlagPlumbing,
)


def all_rules() -> List[Rule]:
    """One fresh instance of every registered lint rule, in ID order."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.rule_id)


def rules_by_id() -> Dict[str, Rule]:
    """Map lint rule ID -> rule instance."""
    return {rule.rule_id: rule for rule in all_rules()}


def all_audit_rules() -> List[AuditRule]:
    """One fresh instance of every registered audit rule, in ID order."""
    return sorted(
        (cls() for cls in _AUDIT_RULE_CLASSES), key=lambda r: r.rule_id
    )


def audit_rules_by_id() -> Dict[str, AuditRule]:
    """Map audit rule ID -> rule instance."""
    return {rule.rule_id: rule for rule in all_audit_rules()}


def _select(registry: Dict[str, object], ids: Iterable[str]) -> List[object]:
    selected = []
    for rule_id in ids:
        key = rule_id.strip().upper()
        if key not in registry:
            known = ", ".join(sorted(registry))
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        selected.append(registry[key])
    return selected


def select_rules(ids: Iterable[str]) -> List[Rule]:
    """Lint rules for the given IDs; raises ``KeyError`` on unknown IDs."""
    return _select(dict(rules_by_id()), ids)  # type: ignore[return-value]


def select_audit_rules(ids: Iterable[str]) -> List[AuditRule]:
    """Audit rules for the given IDs; raises ``KeyError`` on unknown IDs."""
    return _select(dict(audit_rules_by_id()), ids)  # type: ignore[return-value]
