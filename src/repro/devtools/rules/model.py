"""M-series rules: the paper's system model must be encoded, not accidental.

Protocol classes (§II–§IV of Mittal et al.) interact with the world only
through the engine: they receive hellos via ``on_receive``, declare one
transceiver action per slot/frame, and derive transmission probabilities
from network parameters (``|A(u)|``, ``Δ_est``). These rules flag code
that reaches around those seams.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..lint import AnyFunctionDef, Finding, ModuleContext, Rule, dotted_name

__all__ = [
    "TableMutationOutsideHook",
    "LiteralTransmitProbability",
    "ProtocolOwnRandomSource",
    "protocol_classes",
]

#: Base-class names that mark a class as a discovery protocol. Direct
#: bases only (AST has no MRO), so the concrete algorithm classes are
#: listed to catch their subclasses too.
_PROTOCOL_BASES = frozenset(
    {
        "DiscoveryProtocol",
        "SynchronousProtocol",
        "AsynchronousProtocol",
        "UniformChannelMixin",
        "StagedSyncDiscovery",
        "GrowingEstimateSyncDiscovery",
        "FlatSyncDiscovery",
        "AsyncFrameDiscovery",
    }
)

#: Methods through which the engine sanctions neighbor-state mutation.
_SANCTIONED_HOOKS = frozenset({"__init__", "on_receive", "reset"})

#: NeighborTable methods that mutate discovery state.
_TABLE_MUTATORS = frozenset(
    {"record_hello", "clear", "merge", "update", "add", "remove", "discard", "pop"}
)

#: Names of the attributes protocols keep their table under.
_TABLE_ATTRS = frozenset({"_table", "neighbor_table"})


def protocol_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Top-level classes whose direct bases mark them as protocols."""
    found = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = set()
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                base_names.add(name.rsplit(".", 1)[-1])
        if base_names & _PROTOCOL_BASES:
            found.append(node)
    return found


def _is_self_table(node: ast.AST) -> bool:
    """True for ``self._table`` / ``self.neighbor_table`` expressions."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in _TABLE_ATTRS
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class TableMutationOutsideHook(Rule):
    rule_id = "M201"
    title = "neighbor state mutates only through engine-sanctioned hooks"
    rationale = (
        "Discovery output is defined as the hellos the engine delivered "
        "(collision-free, in-span); a protocol writing its own table from "
        "decide_slot or a helper fabricates discoveries the medium never "
        "carried."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in protocol_classes(ctx.tree):
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _SANCTIONED_HOOKS:
                    continue
                yield from self._check_method(ctx, cls, method)

    def _check_method(
        self,
        ctx: ModuleContext,
        cls: ast.ClassDef,
        method: AnyFunctionDef,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _TABLE_MUTATORS
                    and _is_self_table(func.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{method.name} mutates the neighbor "
                        f"table via {func.attr}(); only __init__/on_receive "
                        "may write discovery state",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if _is_self_table(target) or (
                        isinstance(target, ast.Attribute)
                        and _is_self_table(target.value)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{cls.name}.{method.name} rebinds or writes "
                            "neighbor-table state outside the sanctioned "
                            "hooks",
                        )


class LiteralTransmitProbability(Rule):
    rule_id = "M202"
    title = "transmission probabilities derive from parameters, not literals"
    rationale = (
        "Theorems 1–3 and 9 hold for p = min(1/2, |A(u)|/·) schedules "
        "derived from Δ_est and |A(u)|; a hardcoded numeric probability "
        "silently detaches the implementation from the analysis."
    )

    _PROB_METHODS = frozenset(
        {"transmit_probability", "frame_transmit_probability"}
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in self._PROB_METHODS:
                continue
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                value = ret.value
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, (int, float))
                    and not isinstance(value.value, bool)
                    and value.value not in (0, 1)
                ):
                    yield self.finding(
                        ctx,
                        ret,
                        f"{node.name} returns the bare literal "
                        f"{value.value!r}; derive the probability from "
                        "params (|A(u)|, delta_est) and store it on the "
                        "instance",
                    )


class ProtocolOwnRandomSource(Rule):
    rule_id = "M203"
    title = "protocols use only their injected private random stream"
    rationale = (
        "Per-node streams come from the run's RngFactory so trials replay "
        "node-for-node; a protocol constructing its own generator decouples "
        "its draws from the experiment seed."
    )

    _FORBIDDEN_LEAVES = frozenset({"default_rng", "make_generator", "RngFactory"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in protocol_classes(ctx.tree):
            for node in ast.walk(cls):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                leaf = parts[-1]
                if leaf in self._FORBIDDEN_LEAVES or (
                    len(parts) >= 2
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and leaf not in ("Generator",)  # type annotations aside
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"protocol class {cls.name} constructs its own "
                        f"random source via {name}(); use the rng injected "
                        "at construction",
                    )
