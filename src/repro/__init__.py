"""repro — neighbor discovery in M2HeW (cognitive-radio) networks.

A faithful reproduction of *Randomized Distributed Algorithms for
Neighbor Discovery in Multi-Hop Multi-Channel Heterogeneous Wireless
Networks* (Mittal, Zeng, Venkatesan, Chandrasekaran — ICDCS 2011),
including the four randomized discovery algorithms, the synchronous and
asynchronous (drifting-clock) simulation substrates they run on, the
baselines the paper argues against, and an analysis toolkit that checks
every theorem and lemma empirically.

Quickstart::

    from repro import net, sim
    from repro.sim.rng import RngFactory

    rngs = RngFactory(7)
    topo = net.topology.random_geometric(20, radius=0.35,
                                         rng=rngs.stream("topology"),
                                         require_connected=True)
    assignment = net.channels.common_channel_plus_random(
        topo.num_nodes, universal_size=8, set_size=3,
        rng=rngs.stream("channels"))
    network = net.build_network(topo, assignment)

    result = sim.run_synchronous(
        network, "algorithm3", seed=42, max_slots=50_000,
        delta_est=network.max_degree)
    print(result.summary())
"""

from __future__ import annotations

from . import analysis, apps, baselines, core, net, sim, workloads
from .core import (
    AsyncFrameDiscovery,
    FlatSyncDiscovery,
    GrowingEstimateSyncDiscovery,
    StagedSyncDiscovery,
    bounds,
)
from .exceptions import (
    ClockModelError,
    ConfigurationError,
    NetworkModelError,
    ReproError,
    SimulationError,
)
from .net import M2HeWNetwork, build_network
from .sim import DiscoveryResult, run_asynchronous, run_synchronous, run_trials

__version__ = "1.0.0"

__all__ = [
    "AsyncFrameDiscovery",
    "ClockModelError",
    "ConfigurationError",
    "DiscoveryResult",
    "FlatSyncDiscovery",
    "GrowingEstimateSyncDiscovery",
    "M2HeWNetwork",
    "NetworkModelError",
    "ReproError",
    "SimulationError",
    "StagedSyncDiscovery",
    "__version__",
    "analysis",
    "apps",
    "baselines",
    "bounds",
    "build_network",
    "core",
    "net",
    "run_asynchronous",
    "run_synchronous",
    "run_trials",
    "sim",
    "workloads",
]
