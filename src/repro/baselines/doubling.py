"""The doubling-estimate approach the paper rejects (§III-A2).

"One way to derive a neighbor discovery algorithm when knowledge about
maximum node degree is not available is [to] repeatedly run an instance
of the [knowledge-aware] algorithm … with geometrically increasing
values for the estimate [2]. This approach cannot be used here because
it requires computing the exact number of time-slots for which an
instance … ought to be run [which] requires nodes to a priori know …
N, S and ρ."

This module implements exactly that rejected approach so the claim can
be tested: :class:`DoublingEstimateSyncDiscovery` runs Algorithm 1
epochs with ``Δ_est = 2, 4, 8, …``, sizing each epoch with the
Theorem 1 budget — which requires the oracle parameters ``N``, ``S``
and ``ρ`` as inputs. Given correct oracle values it works (and the E2
comparison shows the incremental Algorithm 2 achieves the same without
them); given wrong oracle values (e.g. an underestimated ``N`` or an
overestimated ``ρ``) its epochs are too short and the success guarantee
evaporates — the ablation in ``tests/test_doubling.py`` demonstrates
both sides.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..core.base import SlotDecision, SynchronousProtocol, UniformChannelMixin
from ..core.bounds import theorem1_stage_budget
from ..core.params import stage_length, validate_epsilon
from ..exceptions import ConfigurationError

__all__ = ["DoublingEstimateSyncDiscovery"]


class DoublingEstimateSyncDiscovery(UniformChannelMixin, SynchronousProtocol):
    """Geometric estimate doubling with oracle-sized epochs.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        oracle_n: Assumed network size ``N`` (the oracle knowledge the
            paper objects to).
        oracle_s: Assumed max channel-set size ``S``.
        oracle_rho: Assumed minimum span-ratio ``ρ``.
        epsilon: Per-epoch failure target.
        max_estimate: Upper end of the doubling sequence; after the
            final epoch the schedule repeats it indefinitely.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        oracle_n: int,
        oracle_s: int,
        oracle_rho: float,
        epsilon: float = 0.1,
        max_estimate: int = 1 << 20,
    ) -> None:
        super().__init__(node_id, channels, rng)
        if oracle_n < 2:
            raise ConfigurationError(f"oracle_n must be >= 2, got {oracle_n}")
        if oracle_s < 1:
            raise ConfigurationError(f"oracle_s must be >= 1, got {oracle_s}")
        if not 0.0 < oracle_rho <= 1.0:
            raise ConfigurationError(
                f"oracle_rho must be in (0, 1], got {oracle_rho}"
            )
        validate_epsilon(epsilon)
        if max_estimate < 2:
            raise ConfigurationError(
                f"max_estimate must be >= 2, got {max_estimate}"
            )
        self._oracle = (oracle_n, oracle_s, oracle_rho, epsilon)
        self._max_estimate = max_estimate
        # Epoch table: (first slot, estimate, stage length).
        self._epochs: List[Tuple[int, int, int]] = []
        self._build_epochs_through(0)

    def epoch_slots(self, estimate: int) -> int:
        """Oracle-sized epoch length for one estimate (Theorem 1 budget)."""
        n, s, rho, eps = self._oracle
        stages = theorem1_stage_budget(s, min(estimate, n), rho, n, eps)
        return stages * stage_length(estimate)

    def _build_epochs_through(self, local_slot: int) -> None:
        start = self._epochs[-1][0] + self.epoch_slots(self._epochs[-1][1]) if self._epochs else 0
        estimate = (
            min(self._epochs[-1][1] * 2, self._max_estimate)
            if self._epochs
            else 2
        )
        while not self._epochs or start <= local_slot:
            self._epochs.append((start, estimate, stage_length(estimate)))
            start += self.epoch_slots(estimate)
            estimate = min(estimate * 2, self._max_estimate)

    def schedule_position(self, local_slot: int) -> Tuple[int, int]:
        """``(estimate, slot-in-stage)`` at a local slot (both 1-based
        for the slot index, matching Algorithm 1's notation)."""
        if local_slot < 0:
            raise ConfigurationError(
                f"local_slot must be non-negative, got {local_slot}"
            )
        self._build_epochs_through(local_slot)
        # Find the epoch containing the slot.
        lo, hi = 0, len(self._epochs)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._epochs[mid][0] <= local_slot:
                lo = mid
            else:
                hi = mid
        start, estimate, stage_len = self._epochs[lo]
        i = ((local_slot - start) % stage_len) + 1
        return estimate, i

    def transmit_probability(self, local_slot: int) -> float:
        """Algorithm 1's ``min(1/2, |A(u)| / 2^i)`` within the epoch."""
        _, i = self.schedule_position(local_slot)
        return min(0.5, self.channel_count / float(2 ** i))

    def decide_slot(self, local_slot: int) -> SlotDecision:
        return self._uniform_slot_decision(self.transmit_probability(local_slot))
