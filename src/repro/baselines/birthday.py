"""Single-channel birthday protocol (McGlynn & Borbash [1]).

The classic randomized neighbor-discovery primitive for a *single*
channel: in every slot, transmit with a fixed probability ``p`` and
listen otherwise. With ``p ~ 1/Δ`` the probability that exactly one of a
node's neighbors transmits is maximized (the "birthday" effect).

This is both a baseline in its own right (for homogeneous single-channel
networks) and the per-channel primitive time-multiplexed by the
universal-sweep baseline (:mod:`repro.baselines.universal_sweep`), the
related-work construction the paper argues against in §I.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.base import SlotDecision, SynchronousProtocol
from ..exceptions import ConfigurationError

__all__ = ["BirthdayProtocol", "optimal_birthday_probability"]


def optimal_birthday_probability(delta_est: int) -> float:
    """Contention-matched transmit probability ``min(1/2, 1/Δ_est)``."""
    if delta_est < 1:
        raise ConfigurationError(f"delta_est must be >= 1, got {delta_est}")
    return min(0.5, 1.0 / delta_est)


class BirthdayProtocol(SynchronousProtocol):
    """Fixed-channel, fixed-probability birthday discovery.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``; must contain ``channel``.
        rng: The node's private random stream.
        channel: The single channel this instance operates on.
        transmit_prob: Per-slot transmission probability; defaults to
            ``min(1/2, 1/Δ_est)`` via
            :func:`optimal_birthday_probability` when ``delta_est`` is
            given instead.
        delta_est: Degree bound used to derive ``transmit_prob`` when the
            probability is not given explicitly.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        channel: int,
        transmit_prob: Optional[float] = None,
        delta_est: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, channels, rng)
        if channel not in self.channels:
            raise ConfigurationError(
                f"node {node_id} cannot run birthday on channel {channel}: "
                f"not in its available set"
            )
        if transmit_prob is None:
            if delta_est is None:
                raise ConfigurationError(
                    "provide either transmit_prob or delta_est"
                )
            transmit_prob = optimal_birthday_probability(delta_est)
        if not 0.0 < transmit_prob <= 1.0:
            raise ConfigurationError(
                f"transmit_prob must be in (0, 1], got {transmit_prob}"
            )
        self._channel = channel
        self._p = float(transmit_prob)

    @property
    def channel(self) -> int:
        """The fixed channel this instance operates on."""
        return self._channel

    def transmit_probability(self, local_slot: int) -> float:
        """Constant ``p`` (vectorization hook — but note the channel is
        fixed, so the fast engine's uniform-channel template does not
        apply unless ``|A(u)| == 1``)."""
        return self._p

    def decide_slot(self, local_slot: int) -> SlotDecision:
        if self._rng.random() < self._p:
            return SlotDecision.transmit(self._channel)
        return SlotDecision.listen(self._channel)
