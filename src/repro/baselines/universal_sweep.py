"""Universal-channel-set sweep baseline (the §I strawman).

The related-work construction the paper criticizes: run a separate
instance of a single-channel neighbor-discovery algorithm on *every*
channel of the agreed universal channel set, time-multiplexed — slot
``t`` is dedicated to universal channel ``U[t mod |U|]``. A node
participates in a slot only if that channel is in its available set
(birthday rule with probability ``min(1/2, 1/Δ_est)``), and stays quiet
otherwise.

Its §I disadvantages, all measurable with this implementation:

1. every node must know the composition of the universal set;
2. running time is ``Θ(|U|)`` per sweep even if all nodes share one
   common channel and the rest of ``U`` is dead spectrum;
3. nodes must start simultaneously, or different nodes disagree on which
   channel a slot is dedicated to (exposed via the ``start offsets``
   option of the synchronous engines).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.base import SlotDecision, SynchronousProtocol
from ..exceptions import ConfigurationError
from .birthday import optimal_birthday_probability

__all__ = ["UniversalSweepProtocol"]


class UniversalSweepProtocol(SynchronousProtocol):
    """Time-multiplexed per-channel birthday over the universal set.

    Args:
        node_id: Identity of this node.
        channels: ``A(u)``.
        rng: The node's private random stream.
        universal_channels: The agreed universal channel set, in the
            agreed order. Must cover ``A(u)``.
        delta_est: Degree bound for the per-channel birthday probability.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        universal_channels: Sequence[int],
        delta_est: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        self._universal = list(universal_channels)
        if len(set(self._universal)) != len(self._universal):
            raise ConfigurationError("universal channel list has duplicates")
        if not self.channels <= set(self._universal):
            missing = sorted(self.channels - set(self._universal))
            raise ConfigurationError(
                f"node {node_id}: available channels {missing} missing from "
                "the universal set"
            )
        self._p = optimal_birthday_probability(delta_est)

    @property
    def universal_size(self) -> int:
        """``|U|`` — the sweep period."""
        return len(self._universal)

    def channel_for_slot(self, local_slot: int) -> int:
        """The universal channel slot ``local_slot`` is dedicated to."""
        return self._universal[local_slot % len(self._universal)]

    def decide_slot(self, local_slot: int) -> SlotDecision:
        channel = self.channel_for_slot(local_slot)
        if channel not in self.channels:
            # This slot's channel is unavailable here; the transceiver
            # has nothing useful to do (the strawman's wasted slots).
            return SlotDecision.quiet()
        if self._rng.random() < self._p:
            return SlotDecision.transmit(channel)
        return SlotDecision.listen(channel)
