"""Baseline discovery protocols the paper compares against (§I).

* :class:`BirthdayProtocol` — the single-channel randomized primitive
  (McGlynn & Borbash [1]).
* :class:`UniversalSweepProtocol` — the related-work strawman: one
  single-channel instance per universal channel, time-multiplexed.
* :class:`DeterministicScanProtocol` — the ``Θ(N_max · |U|)``
  deterministic schedule of [20]-[22].
"""

from __future__ import annotations

from .birthday import BirthdayProtocol, optimal_birthday_probability
from .deterministic_scan import DeterministicScanProtocol
from .doubling import DoublingEstimateSyncDiscovery
from .genie import GenieScheduleProtocol, build_genie_schedule, genie_schedule_length
from .universal_sweep import UniversalSweepProtocol

__all__ = [
    "BirthdayProtocol",
    "DeterministicScanProtocol",
    "DoublingEstimateSyncDiscovery",
    "GenieScheduleProtocol",
    "UniversalSweepProtocol",
    "build_genie_schedule",
    "genie_schedule_length",
    "optimal_birthday_probability",
]
