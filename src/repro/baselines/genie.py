"""Genie-aided TDMA reference schedule.

An *unachievable* reference point: a central scheduler with full
knowledge of the network (membership, positions, channel sets) computes
a short collision-free schedule offline, and every node executes it in
lockstep. No distributed algorithm can beat a well-constructed genie
schedule by more than scheduling slack, so it contextualizes how much
of the randomized algorithms' time is the price of *not knowing* the
network — which is the whole problem.

Construction: for every channel ``c`` in use, transmitters are grouped
into rounds such that within a round no two scheduled transmitters
interfere at any common listener: we greedily color the *conflict
graph* on channel ``c`` where ``u ~ v`` iff they can hear each other on
``c`` or share a node that hears both on ``c`` (distance ≤ 2 in the
channel-``c`` graph). In each round every non-scheduled node with ``c``
available listens on ``c``, so each transmitter is heard clearly by all
its channel-``c`` neighbors. One full pass covers every directed link.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.base import SlotDecision, SynchronousProtocol
from ..exceptions import ConfigurationError
from ..net.network import M2HeWNetwork

__all__ = [
    "GenieScheduleProtocol",
    "ScheduleEntry",
    "build_genie_schedule",
    "genie_schedule_length",
]

# One schedule entry: (channel, transmitters firing simultaneously).
ScheduleEntry = Tuple[int, FrozenSet[int]]


def build_genie_schedule(network: M2HeWNetwork) -> List[ScheduleEntry]:
    """Compute a collision-free covering schedule for ``network``."""
    schedule: List[ScheduleEntry] = []
    for c in sorted(network.universal_channel_set):
        # Nodes that must transmit on c: those someone needs to hear on c.
        speakers = sorted(
            {
                v
                for u in network.node_ids
                for v in network.neighbors_on(u, c)
            }
        )
        if not speakers:
            continue
        # Conflict: u and v cannot share a round if some listener hears
        # both on c, or they hear each other (half-duplex: a transmitter
        # cannot listen, so mutual audibility forces separate rounds).
        conflicts: Dict[int, set] = {v: set() for v in speakers}
        hears_on = {
            u: network.hears_on(u, c) for u in network.node_ids
        }
        for u in network.node_ids:
            audible = sorted(hears_on[u] & set(speakers))
            for i, a in enumerate(audible):
                for b in audible[i + 1 :]:
                    conflicts[a].add(b)
                    conflicts[b].add(a)
        for v in speakers:
            for w in hears_on.get(v, frozenset()):
                if w in conflicts and w != v:
                    conflicts[v].add(w)
                    conflicts[w].add(v)
        # Greedy coloring, largest degree first.
        order = sorted(speakers, key=lambda v: -len(conflicts[v]))
        color_of: Dict[int, int] = {}
        for v in order:
            used = {color_of[w] for w in conflicts[v] if w in color_of}
            color = 0
            while color in used:
                color += 1
            color_of[v] = color
        num_rounds = 1 + max(color_of.values())
        for round_idx in range(num_rounds):
            txs = frozenset(
                v for v, col in color_of.items() if col == round_idx
            )
            schedule.append((c, txs))
    if not schedule:
        raise ConfigurationError(
            "network has no links; the genie has nothing to schedule"
        )
    return schedule


def genie_schedule_length(network: M2HeWNetwork) -> int:
    """Slots in one covering pass of the genie schedule."""
    return len(build_genie_schedule(network))


class GenieScheduleProtocol(SynchronousProtocol):
    """Executes a precomputed global schedule (then idles, listening).

    All nodes must be constructed with the *same* schedule object —
    exactly the global coordination the distributed algorithms cannot
    assume.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        schedule: Sequence[ScheduleEntry],
    ) -> None:
        super().__init__(node_id, channels, rng)
        if not schedule:
            raise ConfigurationError("empty genie schedule")
        self._schedule = list(schedule)

    @property
    def schedule_length(self) -> int:
        """Slots in one covering pass."""
        return len(self._schedule)

    def decide_slot(self, local_slot: int) -> SlotDecision:
        if local_slot >= len(self._schedule):
            # Pass complete; nothing left to do. Idle on a channel we own.
            return SlotDecision.listen(min(self.channels))
        channel, txs = self._schedule[local_slot]
        if self.node_id in txs:
            return SlotDecision.transmit(channel)
        if channel in self.channels:
            return SlotDecision.listen(channel)
        return SlotDecision.quiet()
