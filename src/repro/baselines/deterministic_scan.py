"""Deterministic round-robin scan baseline (à la [20]-[22]).

The deterministic multi-channel algorithms the paper compares against
assume a synchronous start, unique node identifiers from a known id
space of size ``N_max``, and knowledge of the universal channel set.
Their running time is ``Θ(N_max · |U|)`` — the *product* the paper's
randomized algorithms avoid.

Schedule: the epoch of length ``N_max · |U|`` is divided into ``|U|``
blocks of ``N_max`` slots. In block ``j``, slot ``k``, the node whose id
is ``k`` transmits on universal channel ``U[j]`` (if available to it)
while every other node with that channel listens on it. Transmissions
are collision-free by construction, so one epoch discovers every link
deterministically — at a cost that dwarfs the randomized algorithms for
realistic ``N_max`` and ``|U|``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..core.base import SlotDecision, SynchronousProtocol
from ..exceptions import ConfigurationError

__all__ = ["DeterministicScanProtocol"]


class DeterministicScanProtocol(SynchronousProtocol):
    """Collision-free deterministic discovery over ``N_max · |U|`` slots.

    Args:
        node_id: Identity of this node; must be < ``id_space_size``.
        channels: ``A(u)``.
        rng: Unused (the protocol is deterministic) but kept for
            interface uniformity.
        universal_channels: Agreed universal channel set, agreed order.
        id_space_size: ``N_max`` — size of the agreed identifier space.
    """

    def __init__(
        self,
        node_id: int,
        channels: Iterable[int],
        rng: np.random.Generator,
        universal_channels: Sequence[int],
        id_space_size: int,
    ) -> None:
        super().__init__(node_id, channels, rng)
        if id_space_size < 1:
            raise ConfigurationError(
                f"id_space_size must be >= 1, got {id_space_size}"
            )
        if node_id >= id_space_size:
            raise ConfigurationError(
                f"node id {node_id} outside id space of size {id_space_size}"
            )
        self._universal = list(universal_channels)
        if len(set(self._universal)) != len(self._universal):
            raise ConfigurationError("universal channel list has duplicates")
        if not self.channels <= set(self._universal):
            missing = sorted(self.channels - set(self._universal))
            raise ConfigurationError(
                f"node {node_id}: available channels {missing} missing from "
                "the universal set"
            )
        self._n_max = id_space_size

    @property
    def epoch_length(self) -> int:
        """``N_max · |U|`` — slots for one complete deterministic pass."""
        return self._n_max * len(self._universal)

    def schedule_position(self, local_slot: int) -> Tuple[int, int]:
        """``(channel, speaker_id)`` for a slot of the epoch."""
        within = local_slot % self.epoch_length
        block, speaker = divmod(within, self._n_max)
        return self._universal[block], speaker

    def decide_slot(self, local_slot: int) -> SlotDecision:
        channel, speaker = self.schedule_position(local_slot)
        if channel not in self.channels:
            return SlotDecision.quiet()
        if speaker == self.node_id:
            return SlotDecision.transmit(channel)
        return SlotDecision.listen(channel)
