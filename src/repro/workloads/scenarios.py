"""Named scenarios — the workloads the paper's introduction motivates.

Each scenario is a :class:`WorkloadConfig` plus recommended protocol
parameters, capturing a deployment story:

* ``campus_cr`` — cognitive-radio nodes across a campus; availability
  carved out of a 12-channel universal set by randomly placed licensed
  primary users (spatial heterogeneity, the paper's core motivation).
* ``urban_dense`` — dense single-hop cluster, moderately heterogeneous
  random channel subsets with a guaranteed common control channel.
* ``rural_sparse`` — a sparse multi-hop chain with few channels and
  homogeneous availability (the easy, ρ = 1 regime).
* ``single_common_channel`` — the §I adversarial case: a large
  universal set but every pair shares exactly one channel; the
  universal-sweep baseline pays Θ(|U|) here.
* ``adversarial_heterogeneous`` — minimum span-ratio everywhere; the
  worst case for the paper's 1/ρ running-time factor.

Two *fault-laden* scenarios additionally carry a
:class:`~repro.faults.plan.FaultPlan` (``campus_pu_dynamics``,
``jammed_urban``); runners pass it via ``faults=s.fault_plan``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..faults.activity import RenewalActivity
from ..faults.models import DynamicPrimaryUsers, GilbertElliott, JammingBursts
from ..faults.plan import FaultPlan
from ..net.network import M2HeWNetwork
from ..net.primary_users import PrimaryUser
from ..sim.rng import SeedLike
from .generator import WorkloadConfig, generate_network

__all__ = ["Scenario", "SCENARIOS", "scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """A named workload plus recommended protocol parameters.

    Attributes:
        name: Scenario identifier.
        description: One-line story.
        config: The network recipe.
        delta_est: Recommended degree bound for the knowledge-assuming
            algorithms (a loose but safe bound for this workload).
        epsilon: Recommended failure-probability target.
        fault_plan: Optional fault plan the scenario's story calls for;
            ``None`` for the static scenarios.
    """

    name: str
    description: str
    config: WorkloadConfig
    delta_est: int
    epsilon: float = 0.1
    fault_plan: Optional[FaultPlan] = None

    def build(self, seed: SeedLike) -> M2HeWNetwork:
        """Realize the scenario's network from a seed."""
        return generate_network(self.config, seed)


def _campus_cr() -> Scenario:
    return Scenario(
        name="campus_cr",
        description=(
            "30 CR nodes on a campus; availability = 12-channel universal "
            "set minus channels blocked by 18 randomly placed primary users"
        ),
        config=WorkloadConfig(
            topology="random_geometric",
            topology_params={
                "num_nodes": 30,
                "radius": 0.28,
                "require_connected": True,
            },
            channel_model="primary_users",
            channel_params={
                "universal_size": 12,
                "num_users": 18,
                "radius": 0.22,
                "min_channels": 2,
            },
        ),
        delta_est=16,
    )


def _urban_dense() -> Scenario:
    return Scenario(
        name="urban_dense",
        description=(
            "20-node single-hop cluster; random 4-channel subsets of a "
            "10-channel universal set sharing a common control channel"
        ),
        config=WorkloadConfig(
            topology="clique",
            topology_params={"num_nodes": 20},
            channel_model="common_channel_plus_random",
            channel_params={"universal_size": 10, "set_size": 4},
        ),
        delta_est=32,
    )


def _rural_sparse() -> Scenario:
    return Scenario(
        name="rural_sparse",
        description=(
            "16-node multi-hop chain with 3 homogeneous channels (rho = 1)"
        ),
        config=WorkloadConfig(
            topology="line",
            topology_params={"num_nodes": 16},
            channel_model="homogeneous",
            channel_params={"num_channels": 3},
        ),
        delta_est=4,
    )


def _single_common_channel() -> Scenario:
    return Scenario(
        name="single_common_channel",
        description=(
            "10-node clique; 41-channel universal set but every pair of "
            "nodes shares exactly one channel (the Section I strawman-killer)"
        ),
        config=WorkloadConfig(
            topology="clique",
            topology_params={"num_nodes": 10},
            channel_model="single_common_channel",
            channel_params={"universal_size": 41, "set_size": 5},
        ),
        delta_est=16,
    )


def _adversarial_heterogeneous() -> Scenario:
    return Scenario(
        name="adversarial_heterogeneous",
        description=(
            "4x4 grid with 6-channel sets overlapping in exactly one "
            "channel per link (rho = 1/6 everywhere)"
        ),
        config=WorkloadConfig(
            topology="grid",
            topology_params={"rows": 4, "cols": 4},
            channel_model="adversarial_min_overlap",
            channel_params={"set_size": 6, "overlap": 1},
        ),
        delta_est=8,
    )


def _suburban_asymmetric() -> Scenario:
    return Scenario(
        name="suburban_asymmetric",
        description=(
            "14 nodes with unequal transmit power (0.2-0.7 range): strong "
            "transmitters reach weak ones that cannot answer (Section V(a))"
        ),
        config=WorkloadConfig(
            topology="asymmetric_random_geometric",
            topology_params={
                "num_nodes": 14,
                "min_range": 0.2,
                "max_range": 0.7,
            },
            channel_model="common_channel_plus_random",
            channel_params={"universal_size": 6, "set_size": 3},
            mode="asymmetric",
        ),
        delta_est=16,
    )


def _wideband_campus() -> Scenario:
    return Scenario(
        name="wideband_campus",
        description=(
            "16 nodes on a wide band: the highest channel reaches half as "
            "far as the lowest, shrinking link spans (Section V(c))"
        ),
        config=WorkloadConfig(
            topology="random_geometric",
            topology_params={
                "num_nodes": 16,
                "radius": 0.42,
                "require_connected": True,
            },
            channel_model="homogeneous",
            channel_params={"num_channels": 6},
            mode="channel_dependent",
            propagation_params={"base_radius": 0.42, "range_decay": 0.5},
        ),
        delta_est=16,
    )


def _campus_pu_dynamics() -> Scenario:
    base = _campus_cr()
    return Scenario(
        name="campus_pu_dynamics",
        description=(
            "campus_cr with three licensed primary users that switch on "
            "and off mid-run, shrinking and restoring nearby A(u) sets"
        ),
        config=base.config,
        delta_est=base.delta_est,
        fault_plan=FaultPlan(
            models=(
                DynamicPrimaryUsers(
                    users=(
                        PrimaryUser(position=(0.25, 0.3), channel=1, radius=0.25),
                        PrimaryUser(position=(0.7, 0.6), channel=4, radius=0.25),
                        PrimaryUser(position=(0.4, 0.8), channel=7, radius=0.25),
                    ),
                    activity=RenewalActivity(mean_on=4000.0, mean_off=12000.0),
                ),
            )
        ),
    )


def _jammed_urban() -> Scenario:
    base = _urban_dense()
    return Scenario(
        name="jammed_urban",
        description=(
            "urban_dense under adversarial jamming bursts on the three "
            "lowest channels plus bursty (Gilbert-Elliott) link loss"
        ),
        config=base.config,
        delta_est=base.delta_est,
        fault_plan=FaultPlan(
            models=(
                JammingBursts.from_duty_cycle(
                    0.25, mean_burst=400.0, channels=(0, 1, 2)
                ),
                GilbertElliott(
                    p_good=0.02, p_bad=0.6, mean_good=600.0, mean_bad=60.0
                ),
            )
        ),
    )


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "campus_cr": _campus_cr,
    "urban_dense": _urban_dense,
    "rural_sparse": _rural_sparse,
    "single_common_channel": _single_common_channel,
    "adversarial_heterogeneous": _adversarial_heterogeneous,
    "suburban_asymmetric": _suburban_asymmetric,
    "wideband_campus": _wideband_campus,
    "campus_pu_dynamics": _campus_pu_dynamics,
    "jammed_urban": _jammed_urban,
}


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
