"""Workload configurations and named scenarios."""

from __future__ import annotations

from .generator import WorkloadConfig, generate_network
from .scenarios import SCENARIOS, scenario, scenario_names

__all__ = [
    "SCENARIOS",
    "WorkloadConfig",
    "generate_network",
    "scenario",
    "scenario_names",
]
