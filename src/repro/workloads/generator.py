"""Declarative workload configuration.

A :class:`WorkloadConfig` names a topology generator, a
channel-availability model and their parameters; :func:`generate_network`
realizes it into an :class:`~repro.net.network.M2HeWNetwork` from a
seed. Benchmarks and the CLI describe workloads this way so that every
network an experiment ran on can be regenerated from its config + seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..net import (
    build_asymmetric_network,
    build_network,
    channels,
    primary_users,
    topology,
)
from ..net.network import M2HeWNetwork
from ..net.propagation import build_channel_dependent_network
from ..sim.rng import RngFactory, SeedLike

__all__ = [
    "CHANNEL_MODELS",
    "MODES",
    "TOPOLOGIES",
    "WorkloadConfig",
    "generate_network",
]

TOPOLOGIES = (
    "random_geometric",
    "grid",
    "line",
    "ring",
    "star",
    "clique",
    "erdos_renyi",
    "two_cliques_bridge",
    "asymmetric_random_geometric",
)

MODES = ("symmetric", "asymmetric", "channel_dependent")

CHANNEL_MODELS = (
    "homogeneous",
    "uniform_random_subsets",
    "common_channel_plus_random",
    "single_common_channel",
    "adversarial_min_overlap",
    "primary_users",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """A reproducible network recipe.

    Attributes:
        topology: Name from :data:`TOPOLOGIES`.
        topology_params: Keyword arguments for the topology generator
            (``rng`` is injected automatically where accepted).
        channel_model: Name from :data:`CHANNEL_MODELS`.
        channel_params: Keyword arguments for the channel model.
        repair_overlap: Post-process with
            :func:`repro.net.channels.repair_pair_overlap` so every
            radio-adjacent pair shares a channel.
        mode: Network kind — ``symmetric`` (the paper's base model),
            ``asymmetric`` (§V(a); requires the
            ``asymmetric_random_geometric`` topology) or
            ``channel_dependent`` (§V(c); requires a positional topology
            and ``propagation_params``).
        propagation_params: ``{"base_radius": …, "range_decay": …}`` for
            the channel-dependent mode.
    """

    topology: str
    topology_params: Dict[str, Any] = field(default_factory=dict)
    channel_model: str = "homogeneous"
    channel_params: Dict[str, Any] = field(default_factory=dict)
    repair_overlap: bool = False
    mode: str = "symmetric"
    propagation_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if self.channel_model not in CHANNEL_MODELS:
            raise ConfigurationError(
                f"unknown channel model {self.channel_model!r}; "
                f"choose from {CHANNEL_MODELS}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose from {MODES}"
            )
        if (self.mode == "asymmetric") != (
            self.topology == "asymmetric_random_geometric"
        ):
            raise ConfigurationError(
                "asymmetric mode and the asymmetric_random_geometric "
                "topology must be used together"
            )
        if self.mode == "channel_dependent" and not self.propagation_params:
            raise ConfigurationError(
                "channel_dependent mode requires propagation_params"
            )
        if self.mode != "channel_dependent" and self.propagation_params:
            raise ConfigurationError(
                "propagation_params only apply to channel_dependent mode"
            )

    def describe(self) -> Dict[str, Any]:
        """JSON-compatible description (for result metadata)."""
        return asdict(self)


def _build_topology(config: WorkloadConfig, rng: np.random.Generator):
    params = dict(config.topology_params)
    builder = getattr(topology, config.topology)
    if config.topology in (
        "random_geometric",
        "erdos_renyi",
        "asymmetric_random_geometric",
    ):
        params["rng"] = rng
    return builder(**params)


def _build_assignment(
    config: WorkloadConfig,
    topo: topology.Topology,
    rng: np.random.Generator,
) -> Dict[int, frozenset]:
    params = dict(config.channel_params)
    name = config.channel_model
    if name == "homogeneous":
        return channels.homogeneous(topo.num_nodes, **params)
    if name == "uniform_random_subsets":
        return channels.uniform_random_subsets(topo.num_nodes, rng=rng, **params)
    if name == "common_channel_plus_random":
        return channels.common_channel_plus_random(topo.num_nodes, rng=rng, **params)
    if name == "single_common_channel":
        return channels.single_common_channel(topo.num_nodes, rng=rng, **params)
    if name == "adversarial_min_overlap":
        return channels.adversarial_min_overlap(topo, rng=rng, **params)
    if name == "primary_users":
        field_params = dict(params)
        min_channels = field_params.pop("min_channels", 1)
        pu_field = primary_users.PrimaryUserField.random(rng=rng, **field_params)
        return primary_users.availability_from_primary_users(
            topo, pu_field, min_channels=min_channels
        )
    raise ConfigurationError(f"unknown channel model {name!r}")


def generate_network(config: WorkloadConfig, seed: SeedLike) -> M2HeWNetwork:
    """Realize ``config`` into a network, deterministically from ``seed``.

    The topology and channel models draw from independent streams, so
    e.g. changing the channel model leaves node placement untouched.
    """
    factory = RngFactory(seed)
    topo = _build_topology(config, factory.stream("topology"))
    assignment = _build_assignment(config, topo, factory.stream("channels"))
    if config.repair_overlap:
        if config.mode == "asymmetric":
            raise ConfigurationError(
                "repair_overlap is only defined for symmetric topologies"
            )
        assignment = channels.repair_pair_overlap(
            topo, assignment, factory.stream("repair")
        )
    if config.mode == "asymmetric":
        return build_asymmetric_network(topo, assignment)
    if config.mode == "channel_dependent":
        return build_channel_dependent_network(
            topo, assignment, **config.propagation_params
        )
    return build_network(topo, assignment)
